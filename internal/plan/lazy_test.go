package plan

// Lazy coalesced cache advancement. Cache.Advance and IndexPool.Advance
// defer all maintenance to a pending change-batch log; these tests pin the
// coalescing semantics: a plan that sleeps through many update batches and
// is then touched folds every pending batch in one pass and comes out
// indistinguishable from a fresh compilation, and the pending log's cap
// triggers an eager amortized drain instead of unbounded growth.

import (
	"math/rand"
	"testing"

	"querypricing/internal/relational"
)

// TestLazyAdvanceSleepingPlans chains many update batches through
// Cache.Advance with no Gets in between — every cached plan sleeps through
// every version — then wakes each plan once and checks it against a fresh
// compilation on the final snapshot.
func TestLazyAdvanceSleepingPlans(t *testing.T) {
	db := testDB()
	pool := NewIndexPool(db)
	cache := NewCacheWithPool(16, pool)
	queries := testQueries()
	for _, q := range queries {
		if _, _, err := cache.Get(db, q); err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
	}
	rng := rand.New(rand.NewSource(41))
	for round := 0; round < 10; round++ {
		changes := randomChanges(rng, db, 1+rng.Intn(3))
		newDB := applyUpdate(t, db, changes)
		pool = pool.Advance(newDB, changes)
		cache, _ = cache.Advance(newDB, changes, pool)
		db = newDB
	}
	if stale := cache.StaleLen(); stale == 0 {
		t.Fatal("every plan slept through 10 batches; expected stale entries")
	}
	for _, q := range queries {
		got, _, err := cache.Get(db, q)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		fresh, err := Compile(db, q)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		if got.Version() != db.Version() {
			t.Fatalf("%s: woken plan at version %d, want %d", q.Name, got.Version(), db.Version())
		}
		assertPlanEquivalent(t, db, got, fresh, q.Name+"/woken")
	}
	if stale := cache.StaleLen(); stale != 0 {
		t.Fatalf("StaleLen = %d after waking every plan, want 0", stale)
	}
}

// TestPendingCapForcesDrain pins the amortized bound on the pending log:
// once a chain of Advances would exceed MaxPendingBatches, the successor
// cache drains eagerly and starts with no stale entries, and the woken
// plans still match fresh compilations.
func TestPendingCapForcesDrain(t *testing.T) {
	db := testDB()
	pool := NewIndexPool(db)
	cache := NewCacheWithPool(16, pool)
	queries := testQueries()
	for _, q := range queries {
		if _, _, err := cache.Get(db, q); err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
	}
	// Alternate one cell between two values; every batch is rebaseable.
	vals := []relational.Value{relational.Int(5), relational.Int(6)}
	sawDrain := false
	for round := 0; round < MaxPendingBatches+8; round++ {
		changes := []CellChange{{Table: "T", Row: 0, Col: 2, New: vals[round%2]}}
		newDB := applyUpdate(t, db, changes)
		pool = pool.Advance(newDB, changes)
		cache, _ = cache.Advance(newDB, changes, pool)
		db = newDB
		if cache.StaleLen() == 0 {
			sawDrain = true // the cap forced an eager drain on this Advance
		}
	}
	if !sawDrain {
		t.Fatalf("no Advance drained within %d rounds; pending log grows without bound", MaxPendingBatches+8)
	}
	for _, q := range queries {
		got, _, err := cache.Get(db, q)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		fresh, err := Compile(db, q)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		if got.BaseFingerprint() != fresh.BaseFingerprint() {
			t.Fatalf("%s: post-drain fingerprint %x != fresh %x", q.Name, got.BaseFingerprint(), fresh.BaseFingerprint())
		}
	}
}

// TestCacheDrainCountsAndConverges pins Drain's contract: it reports the
// rebased/recompiled split, leaves no stale entries, and the drained plans
// match fresh compilations.
func TestCacheDrainCountsAndConverges(t *testing.T) {
	db := testDB()
	pool := NewIndexPool(db)
	cache := NewCacheWithPool(16, pool)
	queries := testQueries()
	for _, q := range queries {
		if _, _, err := cache.Get(db, q); err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
	}
	changes := []CellChange{
		{Table: "T", Row: 1, Col: 0, New: relational.Int(5)},
		{Table: "U", Row: 3, Col: 0, New: relational.Int(2)},
	}
	newDB := applyUpdate(t, db, changes)
	pool = pool.Advance(newDB, changes)
	cache, ast := cache.Advance(newDB, changes, pool)
	rebased, recompiled := cache.Drain(0)
	if rebased+recompiled != ast.Deferred {
		t.Fatalf("Drain folded %d+%d plans, want %d", rebased, recompiled, ast.Deferred)
	}
	if rebased == 0 {
		t.Fatal("expected at least one delta-maintained plan")
	}
	if stale := cache.StaleLen(); stale != 0 {
		t.Fatalf("StaleLen = %d after Drain, want 0", stale)
	}
	for _, q := range queries {
		got, fresh, err := cache.Get(newDB, q)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		if fresh {
			t.Fatalf("%s: Get recompiled after a full Drain", q.Name)
		}
		ref, err := Compile(newDB, q)
		if err != nil {
			t.Fatal(err)
		}
		if got.BaseFingerprint() != ref.BaseFingerprint() {
			t.Fatalf("%s: drained fingerprint %x != fresh %x", q.Name, got.BaseFingerprint(), ref.BaseFingerprint())
		}
	}
}

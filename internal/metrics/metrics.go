// Package metrics is a dependency-free Prometheus instrumentation layer:
// counters, gauges and histograms registered on a Registry and served in
// the Prometheus text exposition format (version 0.0.4, the format every
// Prometheus-compatible scraper speaks). It exists so marketd can expose
// a production /metrics endpoint without pulling the prometheus client
// library into the module — the subset implemented here (counter, gauge,
// histogram, label vectors, collect-on-scrape callbacks) is exactly what
// the serving stack needs, and the output is validated line-by-line by
// the package tests and reconciled against client-side request counts by
// the metamorphic test in internal/serve.
//
// Concurrency: instrument updates (Inc/Add/Set/Observe) are lock-free
// atomics on the hot path; label-vector children are resolved under a
// per-vector mutex and can be pre-resolved with With at wiring time.
// WritePrometheus takes a consistent point-in-time read of every
// instrument.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds a set of metric families and renders them in
// registration order. The zero value is not usable; use NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families []*family
	names    map[string]bool
}

// family is one named metric with its type, help text, and the children
// (one per label-value combination; exactly one for unlabeled metrics).
type family struct {
	name   string
	help   string
	typ    string // "counter" | "gauge" | "histogram"
	labels []string

	mu         sync.Mutex
	children   map[string]child // key = joined label values
	order      []string
	collect    func() float64  // non-nil for unlabeled *Func metrics
	collectVec func() []Sample // non-nil for labeled *VecFunc metrics
}

// Sample is one labeled sample produced by a collect-on-scrape vector
// family (GaugeVecFunc): the label values, in declaration order, and the
// sample value.
type Sample struct {
	Labels []string
	Value  float64
}

// child is anything that can render its sample lines.
type child interface {
	write(w io.Writer, name, labelPrefix string) error
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: map[string]bool{}}
}

// register adds a family, panicking on duplicate names — metric wiring is
// static configuration, and a silent duplicate would split samples across
// two families.
func (r *Registry) register(f *family) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[f.name] {
		panic(fmt.Sprintf("metrics: duplicate metric name %q", f.name))
	}
	r.names[f.name] = true
	f.children = map[string]child{}
	r.families = append(r.families, f)
	return f
}

// Counter registers an unlabeled monotonically increasing counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(&family{name: name, help: help, typ: "counter"})
	c := &Counter{}
	f.child("", c)
	return c
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — for monotone totals another layer already tracks (e.g. the
// broker's cumulative deferred-rebase count).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, typ: "counter", collect: fn})
}

// CounterVec registers a labeled counter family; resolve children with
// With.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	f := r.register(&family{name: name, help: help, typ: "counter", labels: labels})
	return &CounterVec{f: f}
}

// Gauge registers an unlabeled gauge (a value that can go up and down).
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(&family{name: name, help: help, typ: "gauge"})
	g := &Gauge{}
	f.child("", g)
	return g
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time
// — the collect-on-scrape idiom for state another layer owns (plan-cache
// depths, WAL age, in-flight requests).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, typ: "gauge", collect: fn})
}

// GaugeVecFunc registers a labeled gauge family whose entire sample set
// is read from fn at scrape time: one Sample per label combination, in
// whatever order fn returns them, and the set may grow or shrink between
// scrapes (per-table row occupancy after a table appears, say). It is
// the labeled form of GaugeFunc.
func (r *Registry) GaugeVecFunc(name, help string, labels []string, fn func() []Sample) {
	r.register(&family{name: name, help: help, typ: "gauge", labels: labels, collectVec: fn})
}

// Histogram registers an unlabeled cumulative histogram with the given
// upper bucket bounds (ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(&family{name: name, help: help, typ: "histogram"})
	h := newHistogram(buckets)
	f.child("", h)
	return h
}

// HistogramVec registers a labeled histogram family; every child shares
// the same bucket bounds.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	f := r.register(&family{name: name, help: help, typ: "histogram", labels: labels})
	return &HistogramVec{f: f, buckets: append([]float64(nil), buckets...)}
}

// child returns (creating if needed) the family's child for one joined
// label-value key.
func (f *family) child(key string, mk child) child {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	f.children[key] = mk
	f.order = append(f.order, key)
	return mk
}

// WritePrometheus renders every registered family in the text exposition
// format, families in registration order, children in first-use order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.typ); err != nil {
			return err
		}
		if f.collect != nil {
			if _, err := fmt.Fprintf(w, "%s %s\n", f.name, formatFloat(f.collect())); err != nil {
				return err
			}
			continue
		}
		if f.collectVec != nil {
			for _, s := range f.collectVec() {
				if err := sampleLine(w, f.name, labelPrefix(f.labels, strings.Join(s.Labels, "\x1f")), "", "", s.Value); err != nil {
					return err
				}
			}
			continue
		}
		f.mu.Lock()
		keys := append([]string(nil), f.order...)
		children := make([]child, len(keys))
		for i, k := range keys {
			children[i] = f.children[k]
		}
		f.mu.Unlock()
		for i, key := range keys {
			if err := children[i].write(w, f.name, labelPrefix(f.labels, key)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Handler returns an http.Handler serving the registry — mount it at
// GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// labelPrefix renders `name1="v1",name2="v2"` for a child's joined key
// ("" for unlabeled metrics). Values were joined with \x1f at With time.
func labelPrefix(names []string, key string) string {
	if len(names) == 0 {
		return ""
	}
	vals := strings.Split(key, "\x1f")
	parts := make([]string, len(names))
	for i, n := range names {
		v := ""
		if i < len(vals) {
			v = vals[i]
		}
		parts[i] = n + `="` + escapeLabel(v) + `"`
	}
	return strings.Join(parts, ",")
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatFloat renders a sample value: integers without an exponent (the
// common case for counters), everything else in Go's shortest form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sampleLine writes one `name{labels} value` line.
func sampleLine(w io.Writer, name, labelPrefix, suffix string, extraLabel string, v float64) error {
	labels := labelPrefix
	if extraLabel != "" {
		if labels != "" {
			labels += ","
		}
		labels += extraLabel
	}
	if labels != "" {
		labels = "{" + labels + "}"
	}
	_, err := fmt.Fprintf(w, "%s%s%s %s\n", name, suffix, labels, formatFloat(v))
	return err
}

// Counter is a monotonically increasing value.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (must be non-negative; counters only go up).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) write(w io.Writer, name, lp string) error {
	return sampleLine(w, name, lp, "", "", float64(c.v.Load()))
}

// CounterVec is a counter family keyed by label values.
type CounterVec struct{ f *family }

// With returns (creating if needed) the child counter for the given label
// values, in the order the labels were declared. Resolve once and reuse
// on hot paths.
func (cv *CounterVec) With(values ...string) *Counter {
	c := cv.f.child(strings.Join(values, "\x1f"), &Counter{})
	return c.(*Counter)
}

// Gauge is a value that can go up and down, stored as float64 bits.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by d (may be negative).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) write(w io.Writer, name, lp string) error {
	return sampleLine(w, name, lp, "", "", g.Value())
}

// Histogram is a cumulative histogram: counts per upper bound, plus the
// sum and total count Prometheus derives rates and means from.
type Histogram struct {
	bounds []float64 // ascending upper bounds, +Inf implicit
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	count  atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: append([]float64(nil), bounds...), counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

func (h *Histogram) write(w io.Writer, name, lp string) error {
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		if err := sampleLine(w, name, lp, "_bucket", `le="`+formatFloat(b)+`"`, float64(cum)); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if err := sampleLine(w, name, lp, "_bucket", `le="+Inf"`, float64(cum)); err != nil {
		return err
	}
	if err := sampleLine(w, name, lp, "_sum", "", math.Float64frombits(h.sum.Load())); err != nil {
		return err
	}
	return sampleLine(w, name, lp, "_count", "", float64(h.count.Load()))
}

// HistogramVec is a histogram family keyed by label values.
type HistogramVec struct {
	f       *family
	buckets []float64
}

// With returns (creating if needed) the child histogram for the given
// label values. Resolve once and reuse on hot paths.
func (hv *HistogramVec) With(values ...string) *Histogram {
	h := hv.f.child(strings.Join(values, "\x1f"), newHistogram(hv.buckets))
	return h.(*Histogram)
}

// DefLatencyBuckets returns the default request-latency bucket bounds in
// seconds: 100µs to 10s in a 1-2.5-5 progression, matching the range a
// quote path that runs in tens of microseconds to a cold batch that runs
// in seconds actually spans.
func DefLatencyBuckets() []float64 {
	return []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
		0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
}

// DefFsyncBuckets returns the default fsync-latency bucket bounds in
// seconds: 50µs to 1s — a healthy fsync is sub-millisecond, and anything
// beyond the tail bound is a disk in trouble.
func DefFsyncBuckets() []float64 {
	return []float64{0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025,
		0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 1}
}

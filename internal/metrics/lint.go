package metrics

import (
	"bufio"
	"fmt"
	"regexp"
	"strings"
)

// Exposition-format line shapes: a sample is `name{labels} value` with
// the label block optional; HELP/TYPE comments introduce a family.
var (
	sampleRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? [-+]?[0-9.eE+-]+(e[-+][0-9]+)?$|^[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? (NaN|[+-]Inf)$`)
	helpRe   = regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*$`)
	typeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
)

// Lint validates a Prometheus text-format exposition: every line is a
// well-formed sample or HELP/TYPE comment, every sample belongs to a
// family announced by a preceding TYPE line, and histogram families end
// with their _sum and _count series. It returns one error per violation
// (nil for a clean exposition). This is the validity check the
// metamorphic test applies to marketd's /metrics output; it is a format
// linter, not a full parser — Prometheus itself remains the authority.
func Lint(text string) []error {
	var errs []error
	announced := map[string]string{} // family -> type
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		s := sc.Text()
		if s == "" {
			continue
		}
		if strings.HasPrefix(s, "#") {
			if helpRe.MatchString(s) {
				continue
			}
			if m := typeRe.FindStringSubmatch(s); m != nil {
				announced[m[1]] = m[2]
				continue
			}
			errs = append(errs, fmt.Errorf("line %d: malformed comment: %s", line, s))
			continue
		}
		if !sampleRe.MatchString(s) {
			errs = append(errs, fmt.Errorf("line %d: malformed sample: %s", line, s))
			continue
		}
		name := s
		if i := strings.IndexAny(name, "{ "); i >= 0 {
			name = name[:i]
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if t, ok := announced[strings.TrimSuffix(name, suffix)]; ok && t == "histogram" {
				base = strings.TrimSuffix(name, suffix)
				break
			}
		}
		if _, ok := announced[base]; !ok {
			errs = append(errs, fmt.Errorf("line %d: sample %q has no preceding # TYPE", line, name))
		}
	}
	if err := sc.Err(); err != nil {
		errs = append(errs, fmt.Errorf("scanning exposition: %w", err))
	}
	return errs
}

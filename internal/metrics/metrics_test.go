package metrics

import (
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Total requests.")
	g := r.Gauge("inflight", "In-flight requests.")
	cv := r.CounterVec("by_route_total", "Requests by route and code.", "route", "code")

	c.Inc()
	c.Add(2)
	g.Set(5)
	g.Add(-2)
	cv.With("/quote", "200").Add(7)
	cv.With("/quote", "429").Inc()

	out := render(t, r)
	for _, want := range []string{
		"# TYPE requests_total counter",
		"requests_total 3",
		"inflight 3",
		`by_route_total{route="/quote",code="200"} 7`,
		`by_route_total{route="/quote",code="429"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if errs := Lint(out); len(errs) != 0 {
		t.Fatalf("lint: %v", errs)
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 2} {
		h.Observe(v)
	}
	out := render(t, r)
	for _, want := range []string{
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="0.01"} 2`, // le is inclusive
		`latency_seconds_bucket{le="0.1"} 3`,
		`latency_seconds_bucket{le="1"} 4`,
		`latency_seconds_bucket{le="+Inf"} 5`,
		"latency_seconds_sum 2.565",
		"latency_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if errs := Lint(out); len(errs) != 0 {
		t.Fatalf("lint: %v", errs)
	}
}

func TestHistogramVecSharesBuckets(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("req_seconds", "Per-route latency.", []float64{0.1}, "route")
	hv.With("/a").Observe(0.05)
	hv.With("/b").Observe(0.5)
	out := render(t, r)
	for _, want := range []string{
		`req_seconds_bucket{route="/a",le="0.1"} 1`,
		`req_seconds_bucket{route="/b",le="0.1"} 0`,
		`req_seconds_bucket{route="/b",le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestFuncCollectors(t *testing.T) {
	r := NewRegistry()
	v := 41.0
	r.GaugeFunc("age_seconds", "Sampled at scrape time.", func() float64 { return v })
	r.CounterFunc("deferred_total", "Sampled counter.", func() float64 { return 9 })
	v = 42
	out := render(t, r)
	if !strings.Contains(out, "age_seconds 42") || !strings.Contains(out, "deferred_total 9") {
		t.Fatalf("collect-on-scrape values missing:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("odd_total", "Escaping.", "what")
	cv.With(`a"b\c` + "\n").Inc()
	out := render(t, r)
	if !strings.Contains(out, `odd_total{what="a\"b\\c\n"} 1`) {
		t.Fatalf("label escaping wrong:\n%s", out)
	}
	if errs := Lint(out); len(errs) != 0 {
		t.Fatalf("lint: %v", errs)
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("x_total", "again")
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c")
	g := r.Gauge("g", "g")
	h := r.Histogram("h_seconds", "h", DefLatencyBuckets())
	cv := r.CounterVec("cv_total", "cv", "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j) / 1e6)
				cv.With([]string{"a", "b"}[i%2]).Inc()
			}
		}(i)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 8000 {
		t.Fatalf("gauge = %g, want 8000", g.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
	if cv.With("a").Value()+cv.With("b").Value() != 8000 {
		t.Fatal("vector children lost increments")
	}
	if errs := Lint(render(t, r)); len(errs) != 0 {
		t.Fatalf("lint: %v", errs)
	}
}

func TestLintCatchesGarbage(t *testing.T) {
	bad := "# TYPE x counter\nx{a=\"b\" 1\n"
	if errs := Lint(bad); len(errs) == 0 {
		t.Fatal("lint accepted a malformed sample")
	}
	orphan := "y_total 3\n"
	if errs := Lint(orphan); len(errs) == 0 {
		t.Fatal("lint accepted a sample with no TYPE")
	}
}

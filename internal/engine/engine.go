// Package engine unifies the paper's pricing algorithms behind a single
// interface and a name-keyed registry. Every algorithm of Section 5 — UBP,
// UIP, LPIP, CIP, Layering, and the XOS combination — is an Algorithm that
// consumes a pricing hypergraph plus a shared Options struct and produces a
// pricing.Result. Callers select algorithms by name (Get, List) instead of
// hard-coding switch statements, so new algorithms plug in without touching
// the broker, the CLIs, or the experiment harness.
package engine

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"querypricing/internal/hypergraph"
	"querypricing/internal/pricing"
)

// Options is the shared knob set passed to every Algorithm. Each algorithm
// reads only the fields it understands and ignores the rest, so one Options
// value can drive a whole roster sweep.
type Options struct {
	// LPIPMaxCandidates caps how many valuation thresholds LPIP tries
	// (0 = all distinct valuations).
	LPIPMaxCandidates int
	// CIPEpsilon is the (1+eps) geometric step of CIP's capacity grid
	// (0 = the pricing package default of 0.5).
	CIPEpsilon float64
	// CIPMaxCapacities caps the number of capacities CIP tries (0 = no cap).
	CIPMaxCapacities int
	// XOSComponents names the registered item-pricing algorithms whose
	// weight vectors the XOS algorithm combines. Empty means {LPIP, CIP},
	// the paper's "XOS-LPIP+CIP" series.
	XOSComponents []string
	// XOSWeightSets supplies precomputed component weight vectors for the
	// XOS algorithm. When non-empty, XOS combines them directly instead of
	// running XOSComponents — callers that already priced the components
	// (e.g. a roster sweep) avoid solving their LPs twice.
	XOSWeightSets [][]float64
	// Shards reports the support-set shard count of the instance being
	// priced, carried on the shared option surface so custom algorithms
	// and harness layers can log or act on the partitioning that produced
	// their hypergraph (the broker fills in its resolved count). The
	// built-in pricing algorithms ignore it: they see only the finished
	// hypergraph, whose conflict sets are byte-identical at every count.
	Shards int
}

// Algorithm is one arbitrage-free pricing algorithm.
type Algorithm interface {
	// Name is the registry key and the short name used in the paper's
	// figures (e.g. "LPIP").
	Name() string
	// Price fits the algorithm's pricing function to the instance and
	// reports the revenue it extracts on it.
	Price(h *hypergraph.Hypergraph, opts Options) (pricing.Result, error)
}

var (
	regMu    sync.RWMutex
	registry = make(map[string]Algorithm)
	order    []string
)

// Register adds an algorithm to the registry under its name
// (case-insensitively unique). It returns an error on an empty name or a
// duplicate registration.
func Register(a Algorithm) error {
	name := a.Name()
	if name == "" {
		return fmt.Errorf("engine: algorithm has empty name")
	}
	key := strings.ToLower(name)
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[key]; dup {
		return fmt.Errorf("engine: algorithm %q already registered", name)
	}
	registry[key] = a
	order = append(order, name)
	return nil
}

// Get returns the algorithm registered under the name (case-insensitive).
func Get(name string) (Algorithm, error) {
	regMu.RLock()
	a, ok := registry[strings.ToLower(name)]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("engine: unknown algorithm %q (have %s)",
			name, strings.Join(List(), ", "))
	}
	return a, nil
}

// List returns the registered algorithm names in registration order: the
// six built-ins first, in the paper's Section 5 order, then any
// user-registered algorithms.
func List() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, len(order))
	copy(out, order)
	return out
}

// Price is a convenience wrapper: look up the named algorithm and run it.
func Price(name string, h *hypergraph.Hypergraph, opts Options) (pricing.Result, error) {
	a, err := Get(name)
	if err != nil {
		return pricing.Result{}, err
	}
	return a.Price(h, opts)
}

// funcAlgorithm adapts a plain function to the Algorithm interface.
type funcAlgorithm struct {
	name string
	fn   func(*hypergraph.Hypergraph, Options) (pricing.Result, error)
}

func (f funcAlgorithm) Name() string { return f.name }

func (f funcAlgorithm) Price(h *hypergraph.Hypergraph, opts Options) (pricing.Result, error) {
	return f.fn(h, opts)
}

// New wraps a pricing function as a registrable Algorithm.
func New(name string, fn func(*hypergraph.Hypergraph, Options) (pricing.Result, error)) Algorithm {
	return funcAlgorithm{name: name, fn: fn}
}

// xosAlgorithm combines the weight vectors of registered item-pricing
// algorithms into their pointwise-max XOS pricing (Section 5.2).
type xosAlgorithm struct{}

func (xosAlgorithm) Name() string { return "XOS" }

func (xosAlgorithm) Price(h *hypergraph.Hypergraph, opts Options) (pricing.Result, error) {
	if len(opts.XOSWeightSets) > 0 {
		out := pricing.XOS(h, opts.XOSWeightSets...)
		out.Extra = fmt.Sprintf("components=%d precomputed", len(opts.XOSWeightSets))
		return out, nil
	}
	comps := opts.XOSComponents
	if len(comps) == 0 {
		comps = []string{"LPIP", "CIP"}
	}
	start := time.Now()
	lpSolves := 0
	var weightSets [][]float64
	for _, name := range comps {
		if strings.EqualFold(name, "XOS") {
			return pricing.Result{}, fmt.Errorf("engine: XOS cannot be its own component")
		}
		res, err := Price(name, h, opts)
		if err != nil {
			return pricing.Result{}, fmt.Errorf("engine: XOS component %s: %w", name, err)
		}
		lpSolves += res.LPSolves
		if res.Weights == nil {
			return pricing.Result{}, fmt.Errorf("engine: XOS component %s is not an item pricing", name)
		}
		weightSets = append(weightSets, res.Weights)
	}
	out := pricing.XOS(h, weightSets...)
	out.LPSolves = lpSolves
	out.Runtime = time.Since(start)
	out.Extra = "components=" + strings.Join(comps, "+")
	return out, nil
}

func mustRegister(a Algorithm) {
	if err := Register(a); err != nil {
		panic(err)
	}
}

func init() {
	mustRegister(New("UBP", func(h *hypergraph.Hypergraph, _ Options) (pricing.Result, error) {
		return pricing.UniformBundle(h), nil
	}))
	mustRegister(New("UIP", func(h *hypergraph.Hypergraph, _ Options) (pricing.Result, error) {
		return pricing.UniformItem(h), nil
	}))
	mustRegister(New("LPIP", func(h *hypergraph.Hypergraph, opts Options) (pricing.Result, error) {
		return pricing.LPItem(h, pricing.LPItemOptions{MaxCandidates: opts.LPIPMaxCandidates})
	}))
	mustRegister(New("CIP", func(h *hypergraph.Hypergraph, opts Options) (pricing.Result, error) {
		return pricing.Capacity(h, pricing.CapacityOptions{
			Epsilon:       opts.CIPEpsilon,
			MaxCapacities: opts.CIPMaxCapacities,
		})
	}))
	mustRegister(New("Layering", func(h *hypergraph.Hypergraph, _ Options) (pricing.Result, error) {
		return pricing.Layering(h), nil
	}))
	mustRegister(xosAlgorithm{})
}

package engine

import (
	"math"
	"reflect"
	"testing"

	"querypricing/internal/hypergraph"
	"querypricing/internal/pricing"
)

// testInstance is a fixed, moderately tangled pricing instance: enough
// structure that every algorithm produces a distinctive result.
func testInstance(t testing.TB) *hypergraph.Hypergraph {
	t.Helper()
	return hypergraph.MustFromEdges(8, []hypergraph.Edge{
		{Items: []int{0}, Valuation: 9},
		{Items: []int{0, 1}, Valuation: 14},
		{Items: []int{1, 2}, Valuation: 11},
		{Items: []int{2, 3, 4}, Valuation: 17},
		{Items: []int{4, 5}, Valuation: 6},
		{Items: []int{5, 6, 7}, Valuation: 13},
		{Items: []int{0, 3, 6}, Valuation: 21},
		{Items: []int{1, 4, 7}, Valuation: 8},
		{Items: []int{0, 1, 2, 3, 4, 5, 6, 7}, Valuation: 30},
		{Items: nil, Valuation: 5}, // empty bundle, always price 0
	})
}

// TestEngineMatchesLegacyCalls asserts that every registered built-in
// produces results identical to the pre-refactor direct function calls on
// the same instance: same revenue, same pricing function parameters.
func TestEngineMatchesLegacyCalls(t *testing.T) {
	h := testInstance(t)
	opts := Options{LPIPMaxCandidates: 6, CIPEpsilon: 0.5}

	legacy := map[string]func() (pricing.Result, error){
		"UBP": func() (pricing.Result, error) { return pricing.UniformBundle(h), nil },
		"UIP": func() (pricing.Result, error) { return pricing.UniformItem(h), nil },
		"LPIP": func() (pricing.Result, error) {
			return pricing.LPItem(h, pricing.LPItemOptions{MaxCandidates: 6})
		},
		"CIP": func() (pricing.Result, error) {
			return pricing.Capacity(h, pricing.CapacityOptions{Epsilon: 0.5})
		},
		"Layering": func() (pricing.Result, error) { return pricing.Layering(h), nil },
		"XOS": func() (pricing.Result, error) {
			lpip, err := pricing.LPItem(h, pricing.LPItemOptions{MaxCandidates: 6})
			if err != nil {
				return pricing.Result{}, err
			}
			cip, err := pricing.Capacity(h, pricing.CapacityOptions{Epsilon: 0.5})
			if err != nil {
				return pricing.Result{}, err
			}
			return pricing.XOS(h, lpip.Weights, cip.Weights), nil
		},
	}

	names := List()
	if len(names) < len(legacy) {
		t.Fatalf("List() = %v, want at least the %d built-ins", names, len(legacy))
	}
	for _, name := range names {
		fn, ok := legacy[name]
		if !ok {
			continue // user-registered extras are out of scope here
		}
		t.Run(name, func(t *testing.T) {
			want, err := fn()
			if err != nil {
				t.Fatalf("legacy %s: %v", name, err)
			}
			got, err := Price(name, h, opts)
			if err != nil {
				t.Fatalf("engine %s: %v", name, err)
			}
			if got.Algorithm != want.Algorithm {
				t.Errorf("Algorithm = %q, want %q", got.Algorithm, want.Algorithm)
			}
			if got.Revenue != want.Revenue {
				t.Errorf("Revenue = %v, want %v", got.Revenue, want.Revenue)
			}
			if got.BundlePrice != want.BundlePrice {
				t.Errorf("BundlePrice = %v, want %v", got.BundlePrice, want.BundlePrice)
			}
			if !reflect.DeepEqual(got.Weights, want.Weights) {
				t.Errorf("Weights = %v, want %v", got.Weights, want.Weights)
			}
			if !reflect.DeepEqual(got.WeightSets, want.WeightSets) {
				t.Errorf("WeightSets = %v, want %v", got.WeightSets, want.WeightSets)
			}
			// The fitted pricing function must agree edge by edge, not just
			// in aggregate.
			for i := 0; i < h.NumEdges(); i++ {
				e := h.Edge(i)
				if gp, wp := got.Price(e), want.Price(e); math.Abs(gp-wp) > 1e-12 {
					t.Errorf("edge %d: Price = %v, want %v", i, gp, wp)
				}
			}
		})
	}
}

func TestRegistryLookup(t *testing.T) {
	for _, name := range []string{"UBP", "ubp", "Lpip", "xos"} {
		if _, err := Get(name); err != nil {
			t.Errorf("Get(%q): %v", name, err)
		}
	}
	if _, err := Get("nope"); err == nil {
		t.Error("Get(nope) succeeded, want error")
	}
	if _, err := Price("nope", testInstance(t), Options{}); err == nil {
		t.Error("Price(nope) succeeded, want error")
	}
}

func TestRegisterRejectsDuplicatesAndEmptyNames(t *testing.T) {
	if err := Register(New("UBP", nil)); err == nil {
		t.Error("duplicate Register(UBP) succeeded, want error")
	}
	if err := Register(New("uBp", nil)); err == nil {
		t.Error("case-variant duplicate Register(uBp) succeeded, want error")
	}
	if err := Register(New("", nil)); err == nil {
		t.Error("Register with empty name succeeded, want error")
	}
}

func TestListOrderStartsWithPaperRoster(t *testing.T) {
	want := []string{"UBP", "UIP", "LPIP", "CIP", "Layering", "XOS"}
	got := List()
	if len(got) < len(want) {
		t.Fatalf("List() = %v, want prefix %v", got, want)
	}
	if !reflect.DeepEqual(got[:len(want)], want) {
		t.Errorf("List()[:6] = %v, want %v", got[:len(want)], want)
	}
}

func TestXOSComponentValidation(t *testing.T) {
	h := testInstance(t)
	if _, err := Price("XOS", h, Options{XOSComponents: []string{"XOS"}}); err == nil {
		t.Error("XOS with itself as component succeeded, want error")
	}
	if _, err := Price("XOS", h, Options{XOSComponents: []string{"UBP"}}); err == nil {
		t.Error("XOS over the non-item pricing UBP succeeded, want error")
	}
	res, err := Price("XOS", h, Options{XOSComponents: []string{"UIP", "Layering"}})
	if err != nil {
		t.Fatalf("XOS over UIP+Layering: %v", err)
	}
	if len(res.WeightSets) != 2 {
		t.Errorf("WeightSets count = %d, want 2", len(res.WeightSets))
	}
	if res.Revenue < 0 {
		t.Errorf("XOS revenue = %v, want >= 0", res.Revenue)
	}
}

// TestXOSPrecomputedWeightSets asserts that XOS over precomputed component
// weights matches XOS that runs its components, without re-solving any LPs.
func TestXOSPrecomputedWeightSets(t *testing.T) {
	h := testInstance(t)
	opts := Options{LPIPMaxCandidates: 6, CIPEpsilon: 0.5}
	lpip, err := Price("LPIP", h, opts)
	if err != nil {
		t.Fatal(err)
	}
	cip, err := Price("CIP", h, opts)
	if err != nil {
		t.Fatal(err)
	}
	recomputed, err := Price("XOS", h, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.XOSWeightSets = [][]float64{lpip.Weights, cip.Weights}
	reused, err := Price("XOS", h, opts)
	if err != nil {
		t.Fatal(err)
	}
	if reused.Revenue != recomputed.Revenue {
		t.Errorf("precomputed XOS revenue = %v, recomputed = %v", reused.Revenue, recomputed.Revenue)
	}
	if !reflect.DeepEqual(reused.WeightSets, recomputed.WeightSets) {
		t.Errorf("precomputed XOS weight sets differ from recomputed")
	}
	if reused.LPSolves != 0 {
		t.Errorf("precomputed XOS solved %d LPs, want 0", reused.LPSolves)
	}
}

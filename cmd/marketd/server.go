package main

// The serving core of marketd, separated from flag parsing and process
// lifecycle (main.go) so tests can boot a server against a temp data
// directory, drive it over httptest, "crash" it, and boot a second one on
// the same directory.
//
// Robustness posture:
//
//   - admission control: at most cfg.MaxInflight request bodies are being
//     processed at once; excess quote traffic is shed with 429 (retryable
//     by the same client), excess or degraded write traffic with 503;
//   - per-request deadlines: every handler runs under a context that
//     expires after cfg.RequestTimeout, and batch quoting propagates that
//     context into its workers (a hung batch cannot pin a worker pool);
//   - graceful drain: beginDrain() flips readiness so load balancers stop
//     sending traffic, in-flight requests finish, and close() writes a
//     final snapshot so the next boot replays nothing.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"time"

	"querypricing/internal/datagen"
	"querypricing/internal/engine"
	"querypricing/internal/market"
	"querypricing/internal/relational"
	"querypricing/internal/store"
	"querypricing/internal/valuation"
	"querypricing/internal/workloads"
)

// serverConfig is everything a server boot needs; main.go fills it from
// flags, tests fill it directly.
type serverConfig struct {
	// DataDir is the durable state directory; empty runs in-memory only
	// (every boot recalibrates, nothing survives a restart).
	DataDir string
	// SnapshotEvery rolls a snapshot after that many durable updates.
	SnapshotEvery int

	Algorithm       string
	SupportSize     int
	Shards          int
	Seed            int64
	ValK            float64
	BackgroundDrain bool

	// RequestTimeout bounds each request's handler context; 0 means no
	// per-request deadline.
	RequestTimeout time.Duration
	// MaxInflight bounds concurrently-processing requests on the quote,
	// update and purchase endpoints; 0 disables admission control.
	MaxInflight int
}

// server is one booted broker plus its serving policy. Boot it with
// newServer, mount routes() on an http.Server, and close() it on the way
// out.
type server struct {
	cfg    serverConfig
	broker *market.Broker
	mgr    *store.Manager // nil when cfg.DataDir is empty

	sem      chan struct{} // admission tokens; nil when MaxInflight is 0
	draining chan struct{} // closed by beginDrain

	// restored records whether this boot recovered state from the data
	// directory (true) or bootstrapped and calibrated from scratch
	// (false); surfaced in /stats and asserted by the restart tests.
	restored bool
	bootedIn time.Duration
}

// newServer boots a broker: from the data directory when it holds a
// snapshot (no recalibration — the point of the store), bootstrapping the
// demo dataset and calibrating otherwise.
func newServer(cfg serverConfig) (*server, error) {
	if _, err := engine.Get(cfg.Algorithm); err != nil {
		return nil, err
	}
	s := &server{cfg: cfg, draining: make(chan struct{})}
	if cfg.MaxInflight > 0 {
		s.sem = make(chan struct{}, cfg.MaxInflight)
	}
	start := time.Now()

	var st *store.Store
	var loaded *market.BrokerSnapshot
	if cfg.DataDir != "" {
		var err error
		st, err = store.Open(cfg.DataDir)
		if err != nil {
			return nil, err
		}
		res, err := st.Load()
		if err != nil {
			st.Close()
			return nil, fmt.Errorf("marketd: recovering %s: %w", cfg.DataDir, err)
		}
		loaded = res.Snapshot
		if loaded != nil {
			log.Printf("marketd: recovered %s: snapshot v%d + %d updates, %d receipts replayed (%d torn bytes dropped)",
				cfg.DataDir, res.SnapshotVersion, res.ReplayedUpdates, res.ReplayedReceipts, res.TornBytes)
		}
	}

	if loaded != nil {
		b, err := market.Restore(*loaded, market.Config{
			Shards:          cfg.Shards,
			Seed:            cfg.Seed,
			LPIPCandidates:  16,
			CIPEpsilon:      0.5,
			BackgroundDrain: cfg.BackgroundDrain,
		})
		if err != nil {
			st.Close()
			return nil, fmt.Errorf("marketd: restoring broker: %w", err)
		}
		s.broker = b
		s.restored = true
	} else {
		b, err := bootstrapBroker(cfg)
		if err != nil {
			if st != nil {
				st.Close()
			}
			return nil, err
		}
		s.broker = b
	}

	if st != nil {
		s.mgr = store.NewManager(s.broker, st, store.ManagerOptions{SnapshotEvery: cfg.SnapshotEvery})
		if !s.restored {
			// First boot on an empty directory: persist the calibrated
			// state so the next boot restores instead of recalibrating.
			if err := s.mgr.Snapshot(); err != nil {
				st.Close()
				return nil, fmt.Errorf("marketd: initial snapshot: %w", err)
			}
		}
	}
	s.bootedIn = time.Since(start)
	return s, nil
}

// bootstrapBroker builds and calibrates the demonstration market: the
// synthetic world dataset priced from the skewed workload.
func bootstrapBroker(cfg serverConfig) (*market.Broker, error) {
	log.Printf("marketd: generating world dataset...")
	db := datagen.World(datagen.WorldConfig{Countries: 239, Cities: 800, Seed: cfg.Seed})
	broker, err := market.NewBroker(db, market.Config{
		SupportSize:     cfg.SupportSize,
		Shards:          cfg.Shards,
		Seed:            cfg.Seed,
		LPIPCandidates:  16,
		CIPEpsilon:      0.5,
		BackgroundDrain: cfg.BackgroundDrain,
	})
	if err != nil {
		return nil, fmt.Errorf("marketd: %w", err)
	}
	log.Printf("marketd: calibrating %s from the skewed workload...", cfg.Algorithm)
	forecast := workloads.Skewed(db)
	rev, err := broker.Calibrate(forecast, valuation.Uniform{K: cfg.ValK}, market.Algorithm(cfg.Algorithm))
	if err != nil {
		return nil, fmt.Errorf("marketd: calibration: %w", err)
	}
	log.Printf("marketd: calibrated; forecast revenue %.2f over %d queries", rev, len(forecast))
	return broker, nil
}

// beginDrain flips the server to draining: /readyz starts failing (pulling
// the instance out of load-balancer rotation) and new write traffic is
// refused; in-flight requests are unaffected.
func (s *server) beginDrain() {
	select {
	case <-s.draining:
	default:
		close(s.draining)
	}
}

func (s *server) isDraining() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

// close releases the broker's durable state: a final snapshot (so the next
// boot's WAL replay is empty) and the store's file handles.
func (s *server) close() error {
	if s.mgr == nil {
		return nil
	}
	return s.mgr.Close()
}

// admit takes an admission token, or reports shed=true when the server is
// at its concurrency bound. The caller must release() iff admitted.
func (s *server) admit() (shed bool) {
	if s.sem == nil {
		return false
	}
	select {
	case s.sem <- struct{}{}:
		return false
	default:
		return true
	}
}

func (s *server) release() {
	if s.sem != nil {
		<-s.sem
	}
}

func (s *server) inflight() int {
	if s.sem == nil {
		return 0
	}
	return len(s.sem)
}

// requestContext derives the handler context: the client's, bounded by the
// per-request deadline.
func (s *server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.RequestTimeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
}

// guarded wraps a work-bearing handler with the serving policy: shed at
// the concurrency bound (quotes get 429 — retry the same instance; writes
// get 503 — go elsewhere), refuse writes while draining, and run the
// handler under the per-request deadline.
func (s *server) guarded(isWrite bool, h func(http.ResponseWriter, *http.Request, context.Context)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if isWrite && s.isDraining() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "draining: not accepting writes"})
			return
		}
		if s.admit() {
			w.Header().Set("Retry-After", "1")
			status := http.StatusTooManyRequests
			if isWrite {
				status = http.StatusServiceUnavailable
			}
			writeJSON(w, status, map[string]string{"error": "overloaded: admission queue full"})
			return
		}
		defer s.release()
		ctx, cancel := s.requestContext(r)
		defer cancel()
		h(w, r, ctx)
	}
}

// routes mounts the API.
func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /algorithms", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"algorithms": engine.List()})
	})
	mux.HandleFunc("POST /quote", s.guarded(false, s.handleQuote))
	mux.HandleFunc("POST /quote/batch", s.guarded(false, s.handleQuoteBatch))
	mux.HandleFunc("POST /update", s.guarded(true, s.handleUpdate))
	mux.HandleFunc("POST /purchase", s.guarded(true, s.handlePurchase))
	return mux
}

// handleHealthz is liveness: the process is up and the mux serving. It
// stays 200 while draining (the process is healthy, just leaving).
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: calibration or restore is complete (implied
// by the server existing), the instance is not draining, and the admission
// queue has room. Load balancers route on this.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.isDraining():
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	case s.sem != nil && s.inflight() >= cap(s.sem):
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "saturated"})
	default:
		writeJSON(w, http.StatusOK, map[string]any{"status": "ready", "restored": s.restored})
	}
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	stats := map[string]any{
		"support_size": s.broker.SupportSize(),
		"algorithm":    s.broker.Algorithm(),
		"revenue":      s.broker.Revenue(),
		"sales":        len(s.broker.Sales()),
		"version":      s.broker.Version(),
		// Deferred-maintenance state of the plan caches: totals plus a
		// per-shard breakdown of cached/stale plans and pending update
		// batches (see docs/UPDATES.md).
		"plans": s.broker.PlanStats(),
		// Boot provenance: whether this process restored from disk (and
		// skipped calibration) and how long boot took.
		"restored":     s.restored,
		"boot_sec":     s.bootedIn.Seconds(),
		"draining":     s.isDraining(),
		"inflight":     s.inflight(),
		"max_inflight": s.cfg.MaxInflight,
	}
	if s.mgr != nil {
		stats["store"] = s.mgr.Store().Stats()
		deg, msg := s.mgr.Degraded()
		stats["degraded"] = deg
		if deg {
			stats["degraded_reason"] = msg
		}
	}
	writeJSON(w, http.StatusOK, stats)
}

func (s *server) handleQuote(w http.ResponseWriter, r *http.Request, ctx context.Context) {
	q, err := decodeQuery(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	if err := ctx.Err(); err != nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
		return
	}
	quote, err := s.broker.Quote(q)
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, quote)
}

func (s *server) handleQuoteBatch(w http.ResponseWriter, r *http.Request, ctx context.Context) {
	qs, err := decodeQueryBatch(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	quotes, err := s.broker.QuoteBatchContext(ctx, qs)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusUnprocessableEntity, map[string]string{"error": err.Error()})
		return
	}
	if quotes == nil {
		quotes = []market.Quote{} // encode empty batches as [], not null
	}
	writeJSON(w, http.StatusOK, quotes)
}

func (s *server) handleUpdate(w http.ResponseWriter, r *http.Request, ctx context.Context) {
	changes, err := decodeChanges(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	if err := ctx.Err(); err != nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
		return
	}
	version, ustats, err := s.update(changes)
	if err != nil {
		if errors.Is(err, store.ErrDegraded) {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusUnprocessableEntity, map[string]string{"error": err.Error()})
		return
	}
	log.Printf("marketd: update applied: version %d, %d changes, %d plan rebases deferred",
		version, len(changes), ustats.PlansDeferred)
	writeJSON(w, http.StatusOK, map[string]any{
		"version":        version,
		"changes":        len(changes),
		"plans_deferred": ustats.PlansDeferred,
	})
}

func (s *server) handlePurchase(w http.ResponseWriter, r *http.Request, ctx context.Context) {
	q, err := decodeQuery(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	budget, err := strconv.ParseFloat(r.URL.Query().Get("budget"), 64)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "budget query parameter required"})
		return
	}
	if err := ctx.Err(); err != nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
		return
	}
	ans, receipt, err := s.purchase(q, budget)
	if err != nil {
		if errors.Is(err, store.ErrDegraded) {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusPaymentRequired, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"receipt": receipt, "answer": ans})
}

// update routes a mutation through the durability layer when one exists.
func (s *server) update(changes []relational.CellChange) (uint64, updateStats, error) {
	if s.mgr != nil {
		v, st, err := s.mgr.Update(changes)
		return v, updateStats{PlansDeferred: st.PlansDeferred}, err
	}
	v, st, err := s.broker.Update(changes)
	return v, updateStats{PlansDeferred: st.PlansDeferred}, err
}

// purchase routes a sale through the durability layer when one exists.
func (s *server) purchase(q *relational.SelectQuery, budget float64) (*relational.Result, market.Receipt, error) {
	if s.mgr != nil {
		return s.mgr.Purchase(q, budget)
	}
	return s.broker.Purchase(q, budget)
}

// updateStats is the projection of support.UpdateStats the API reports.
type updateStats struct {
	PlansDeferred int
}

func decodeQuery(r *http.Request) (*relational.SelectQuery, error) {
	defer r.Body.Close()
	var q relational.SelectQuery
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&q); err != nil {
		return nil, fmt.Errorf("bad query: %w", err)
	}
	if q.Name == "" {
		q.Name = "adhoc"
	}
	return &q, nil
}

func decodeQueryBatch(r *http.Request) ([]*relational.SelectQuery, error) {
	defer r.Body.Close()
	var qs []*relational.SelectQuery
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&qs); err != nil {
		return nil, fmt.Errorf("bad query batch: %w", err)
	}
	for i, q := range qs {
		if q == nil {
			return nil, fmt.Errorf("bad query batch: null query at index %d", i)
		}
		if q.Name == "" {
			q.Name = fmt.Sprintf("adhoc-%d", i)
		}
	}
	return qs, nil
}

func decodeChanges(r *http.Request) ([]relational.CellChange, error) {
	defer r.Body.Close()
	var changes []relational.CellChange
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&changes); err != nil {
		return nil, fmt.Errorf("bad update: %w", err)
	}
	if len(changes) == 0 {
		return nil, fmt.Errorf("bad update: empty change list")
	}
	return changes, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("marketd: encoding response: %v", err)
	}
}

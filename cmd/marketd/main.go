// Command marketd runs a demonstration data-market broker over HTTP (the
// Qirana role): it loads the synthetic world dataset, calibrates an
// arbitrage-free pricing from the skewed workload, and serves quotes and
// purchases for ad-hoc queries. With -data-dir it is durable: calibrated
// state, update batches and sale receipts persist to a snapshot + WAL
// directory, and a restart restores byte-identical quotes at the pinned
// version without recalibrating (see docs/OPERATIONS.md).
//
// Endpoints (all JSON unless noted):
//
//	GET  /healthz            liveness (process up)
//	GET  /readyz             readiness (booted, not draining, not saturated)
//	GET  /stats              broker status (support size, algorithm, revenue, version, plan-cache and store state)
//	GET  /metrics            Prometheus text-format metrics (see docs/OPERATIONS.md)
//	GET  /algorithms         the engine registry's algorithm names
//	POST /quote              body: SelectQuery -> Quote
//	POST /quote/batch        body: [SelectQuery, ...] -> [Quote, ...]
//	POST /purchase?budget=N  body: SelectQuery -> answer + receipt
//	POST /update             body: [CellChange, ...] -> new version + plan stats + assigned insert slots
//	POST /compact            body: {"tables":[...]} (optional; default all) -> compaction stats
//
// A SelectQuery body looks like:
//
//	{"Name":"q","Tables":["Country"],
//	 "Where":[{"Col":{"Table":"Country","Col":"Continent"},
//	           "Op":0,"Val":{"K":3,"S":"Asia"}}],
//	 "Select":[{"Table":"Country","Col":"Name"}]}
//
// and a CellChange body (POST /update) looks like:
//
//	[{"Table":"Country","Row":3,"Col":2,"New":{"K":3,"S":"Europe"}}]
//
// Each update atomically publishes a new database version; quotes in
// flight keep pricing against the previous snapshot, later quotes see the
// new one, and every Quote/Receipt reports the version it was priced at
// (see docs/UPDATES.md). With -data-dir, each update and purchase is
// written ahead to the WAL before it is acknowledged; a persistence
// failure degrades the market to read-only (503 on writes, quotes keep
// serving) rather than acknowledging non-durable state.
//
// Overload and shutdown behavior: at most -max-inflight requests are
// processed concurrently (excess quotes shed with 429, writes with 503,
// both carrying Retry-After), each request runs under a -request-timeout
// deadline that batch quoting propagates into its workers, and
// SIGINT/SIGTERM drains gracefully — /readyz starts failing, in-flight
// requests finish, a final snapshot is written.
//
// Start with:
//
//	marketd -addr :8080 -algorithm LPIP -data-dir /var/lib/marketd
//
// The serving core (routing, admission control, drain, durability,
// metrics) lives in internal/serve so tests and the load harness
// (pricebench -experiment load, docs/LOAD.md) boot the identical stack
// in-process; this command is flag parsing and process lifecycle.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	_ "net/http/pprof" // profiling endpoints, mounted only with -pprof
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"querypricing/internal/engine"
	"querypricing/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		algo      = flag.String("algorithm", "LPIP", "pricing algorithm: "+strings.Join(engine.List(), " | "))
		supportN  = flag.Int("support", 400, "support size")
		shards    = flag.Int("shards", 0, "support-set shards (0 = GOMAXPROCS, <0 = one shard)")
		seed      = flag.Int64("seed", 1, "random seed")
		valK      = flag.Float64("valuation-k", 100, "Uniform[1,k] calibration valuations")
		pprofOn   = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
		lazyDrain = flag.Bool("background-drain", true, "fold deferred plan rebases in the background after each update")

		compactThresh = flag.Float64("compact-threshold", 0.3, "auto-compact a table when tombstones/slots reaches this fraction (0 = manual POST /compact only)")
		compactMin    = flag.Int("compact-min-rows", 4096, "exempt tables with fewer physical slots than this from auto-compaction")

		dataDir    = flag.String("data-dir", "", "durable state directory (empty = in-memory only)")
		snapEvery  = flag.Int("snapshot-every", 64, "roll a snapshot after this many durable updates (0 = only at shutdown)")
		reqTimeout = flag.Duration("request-timeout", 10*time.Second, "per-request handler deadline (0 = none)")
		maxInfl    = flag.Int("max-inflight", 128, "concurrent quote/update/purchase bound; excess is shed (0 = unbounded)")
		drainWait  = flag.Duration("drain-timeout", 15*time.Second, "graceful-shutdown budget for in-flight requests")
	)
	flag.Parse()

	srv, err := serve.New(serve.Config{
		DataDir:         *dataDir,
		SnapshotEvery:   *snapEvery,
		Algorithm:       *algo,
		SupportSize:     *supportN,
		Shards:          *shards,
		Seed:            *seed,
		ValK:            *valK,
		BackgroundDrain: *lazyDrain,
		RequestTimeout:  *reqTimeout,
		MaxInflight:     *maxInfl,

		CompactThreshold: *compactThresh,
		CompactMinRows:   *compactMin,
	})
	if err != nil {
		log.Fatalf("marketd: %v", err)
	}

	mux := srv.Routes()
	if *pprofOn {
		// net/http/pprof registers its handlers on the default mux at
		// import time; expose them only when asked.
		mux.Handle("/debug/pprof/", http.DefaultServeMux)
		log.Printf("marketd: pprof enabled under /debug/pprof/")
	}

	// A real server, not a bare ListenAndServe: header/read/write/idle
	// timeouts bound what any one connection can hold open, independent of
	// the per-request handler deadline.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("marketd: listening on %s (restored=%v, boot %.2fs)", *addr, srv.Restored(), srv.BootDuration().Seconds())

	select {
	case err := <-errCh:
		log.Fatalf("marketd: %v", err)
	case <-ctx.Done():
	}

	// Drain: stop accepting, fail readiness, let in-flight requests finish
	// within the budget, then persist a final snapshot.
	log.Printf("marketd: signal received; draining (%s budget)...", *drainWait)
	srv.BeginDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("marketd: shutdown: %v", err)
	}
	if err := srv.Close(); err != nil {
		log.Printf("marketd: closing store: %v", err)
	}
	log.Printf("marketd: bye")
}

// Command marketd runs a demonstration data-market broker over HTTP (the
// Qirana role): it loads the synthetic world dataset, calibrates an
// arbitrage-free pricing from the skewed workload, and serves quotes and
// purchases for ad-hoc queries.
//
// Endpoints (all JSON):
//
//	GET  /stats              broker status (support size, algorithm, revenue, version, plan-cache state)
//	GET  /algorithms         the engine registry's algorithm names
//	POST /quote              body: SelectQuery -> Quote
//	POST /quote/batch        body: [SelectQuery, ...] -> [Quote, ...]
//	POST /purchase?budget=N  body: SelectQuery -> answer + receipt
//	POST /update             body: [CellChange, ...] -> new version + plan stats
//
// A SelectQuery body looks like:
//
//	{"Name":"q","Tables":["Country"],
//	 "Where":[{"Col":{"Table":"Country","Col":"Continent"},
//	           "Op":0,"Val":{"K":3,"S":"Asia"}}],
//	 "Select":[{"Table":"Country","Col":"Name"}]}
//
// and a CellChange body (POST /update) looks like:
//
//	[{"Table":"Country","Row":3,"Col":2,"New":{"K":3,"S":"Europe"}}]
//
// Each update atomically publishes a new database version; quotes in
// flight keep pricing against the previous snapshot, later quotes see the
// new one, and every Quote/Receipt reports the version it was priced at
// (see docs/UPDATES.md).
//
// Start with:
//
//	marketd -addr :8080 -algorithm LPIP
//
// Quoting rides the incremental conflict-set engine: calibration compiles
// every forecast query into a cached plan (internal/plan), and each quote
// decides its conflict set by probing those plans with the neighbors'
// deltas — repeated query shapes never pay a full base evaluation, and
// recalibration shares the same read-only support set as live quotes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // profiling endpoints, mounted only with -pprof
	"strconv"
	"strings"

	"querypricing/internal/datagen"
	"querypricing/internal/engine"
	"querypricing/internal/market"
	"querypricing/internal/relational"
	"querypricing/internal/valuation"
	"querypricing/internal/workloads"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		algo      = flag.String("algorithm", "LPIP", "pricing algorithm: "+strings.Join(engine.List(), " | "))
		supportN  = flag.Int("support", 400, "support size")
		shards    = flag.Int("shards", 0, "support-set shards (0 = GOMAXPROCS, <0 = one shard)")
		seed      = flag.Int64("seed", 1, "random seed")
		valK      = flag.Float64("valuation-k", 100, "Uniform[1,k] calibration valuations")
		pprofOn   = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
		lazyDrain = flag.Bool("background-drain", true, "fold deferred plan rebases in the background after each update")
	)
	flag.Parse()

	if _, err := engine.Get(*algo); err != nil {
		log.Fatalf("marketd: %v", err)
	}

	log.Printf("marketd: generating world dataset...")
	db := datagen.World(datagen.WorldConfig{Countries: 239, Cities: 800, Seed: *seed})
	broker, err := market.NewBroker(db, market.Config{
		SupportSize:     *supportN,
		Shards:          *shards,
		Seed:            *seed,
		LPIPCandidates:  16,
		CIPEpsilon:      0.5,
		BackgroundDrain: *lazyDrain,
	})
	if err != nil {
		log.Fatalf("marketd: %v", err)
	}
	log.Printf("marketd: calibrating %s from the skewed workload...", *algo)
	forecast := workloads.Skewed(db)
	rev, err := broker.Calibrate(forecast, valuation.Uniform{K: *valK}, market.Algorithm(*algo))
	if err != nil {
		log.Fatalf("marketd: calibration: %v", err)
	}
	log.Printf("marketd: calibrated; forecast revenue %.2f over %d queries", rev, len(forecast))

	mux := http.NewServeMux()
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"support_size": broker.SupportSize(),
			"algorithm":    broker.Algorithm(),
			"revenue":      broker.Revenue(),
			"sales":        len(broker.Sales()),
			"version":      broker.Version(),
			// Deferred-maintenance state of the plan caches: totals plus a
			// per-shard breakdown of cached/stale plans and pending update
			// batches (see docs/UPDATES.md).
			"plans": broker.PlanStats(),
		})
	})
	mux.HandleFunc("GET /algorithms", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"algorithms": engine.List()})
	})
	mux.HandleFunc("POST /quote", func(w http.ResponseWriter, r *http.Request) {
		q, err := decodeQuery(r)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		quote, err := broker.Quote(q)
		if err != nil {
			writeJSON(w, http.StatusUnprocessableEntity, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, quote)
	})
	mux.HandleFunc("POST /quote/batch", func(w http.ResponseWriter, r *http.Request) {
		qs, err := decodeQueryBatch(r)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		quotes, err := broker.QuoteBatch(qs)
		if err != nil {
			writeJSON(w, http.StatusUnprocessableEntity, map[string]string{"error": err.Error()})
			return
		}
		if quotes == nil {
			quotes = []market.Quote{} // encode empty batches as [], not null
		}
		writeJSON(w, http.StatusOK, quotes)
	})
	mux.HandleFunc("POST /update", func(w http.ResponseWriter, r *http.Request) {
		changes, err := decodeChanges(r)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		version, stats, err := broker.Update(changes)
		if err != nil {
			writeJSON(w, http.StatusUnprocessableEntity, map[string]string{"error": err.Error()})
			return
		}
		log.Printf("marketd: update applied: version %d, %d changes, %d plan rebases deferred",
			version, len(changes), stats.PlansDeferred)
		writeJSON(w, http.StatusOK, map[string]any{
			"version":        version,
			"changes":        len(changes),
			"plans_deferred": stats.PlansDeferred,
		})
	})
	mux.HandleFunc("POST /purchase", func(w http.ResponseWriter, r *http.Request) {
		q, err := decodeQuery(r)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		budget, err := strconv.ParseFloat(r.URL.Query().Get("budget"), 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "budget query parameter required"})
			return
		}
		ans, receipt, err := broker.Purchase(q, budget)
		if err != nil {
			writeJSON(w, http.StatusPaymentRequired, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"receipt": receipt, "answer": ans})
	})

	if *pprofOn {
		// net/http/pprof registers its handlers on the default mux at
		// import time; expose them only when asked.
		mux.Handle("/debug/pprof/", http.DefaultServeMux)
		log.Printf("marketd: pprof enabled under /debug/pprof/")
	}

	log.Printf("marketd: listening on %s", *addr)
	if err := http.ListenAndServe(*addr, mux); err != nil {
		log.Fatal(err)
	}
}

func decodeQuery(r *http.Request) (*relational.SelectQuery, error) {
	defer r.Body.Close()
	var q relational.SelectQuery
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&q); err != nil {
		return nil, fmt.Errorf("bad query: %w", err)
	}
	if q.Name == "" {
		q.Name = "adhoc"
	}
	return &q, nil
}

func decodeQueryBatch(r *http.Request) ([]*relational.SelectQuery, error) {
	defer r.Body.Close()
	var qs []*relational.SelectQuery
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&qs); err != nil {
		return nil, fmt.Errorf("bad query batch: %w", err)
	}
	for i, q := range qs {
		if q == nil {
			return nil, fmt.Errorf("bad query batch: null query at index %d", i)
		}
		if q.Name == "" {
			q.Name = fmt.Sprintf("adhoc-%d", i)
		}
	}
	return qs, nil
}

func decodeChanges(r *http.Request) ([]relational.CellChange, error) {
	defer r.Body.Close()
	var changes []relational.CellChange
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&changes); err != nil {
		return nil, fmt.Errorf("bad update: %w", err)
	}
	if len(changes) == 0 {
		return nil, fmt.Errorf("bad update: empty change list")
	}
	return changes, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("marketd: encoding response: %v", err)
	}
}

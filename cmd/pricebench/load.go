package main

// The sustained-load SLO experiment (docs/LOAD.md): boot the real
// marketd serving stack in-process (internal/serve over httptest) — or
// target an already-running marketd via -load-addr — and drive it with
// open-loop mixed traffic (internal/loadgen) at a configured rate, mix
// and duration. Reports per-class throughput, shed/error counts and
// p50/p95/p99 latency; with -slo it also prints Benchmark-format
// slo_load lines that scripts/bench.sh folds into BENCH_<n>.json, so the
// bench-compare gate catches latency-under-load regressions the same way
// it catches microbenchmark ones.

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"time"

	"querypricing/internal/datagen"
	"querypricing/internal/loadgen"
	"querypricing/internal/metrics"
	"querypricing/internal/relational"
	"querypricing/internal/serve"
	"querypricing/internal/workloads"
)

// parseMix decodes "-mix quote=0.85,batch=0.05,update=0.05,purchase=0.05"
// (empty = loadgen.DefaultMix).
func parseMix(s string) (loadgen.Mix, error) {
	var m loadgen.Mix
	if s == "" {
		return m, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return m, fmt.Errorf("bad -mix element %q (want class=weight)", part)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(kv[1]), 64)
		if err != nil {
			return m, fmt.Errorf("bad -mix weight %q: %w", kv[1], err)
		}
		switch strings.TrimSpace(kv[0]) {
		case "quote":
			m.Quote = v
		case "batch":
			m.Batch = v
		case "update":
			m.Update = v
		case "purchase":
			m.Purchase = v
		default:
			return m, fmt.Errorf("unknown -mix class %q (quote|batch|update|purchase)", kv[0])
		}
	}
	return m, nil
}

func (r *runner) runLoad() error {
	mix, err := parseMix(r.loadMix)
	if err != nil {
		return err
	}

	var (
		baseURL string
		db      *relational.Database
	)
	if r.loadAddr != "" {
		baseURL = strings.TrimSuffix(r.loadAddr, "/")
		if !strings.HasPrefix(baseURL, "http") {
			baseURL = "http://" + baseURL
		}
		// The workload must be valid against the server's dataset:
		// regenerate the marketd demo world with the same -seed the server
		// was started with.
		db = datagen.World(datagen.WorldConfig{Countries: 239, Cities: 800, Seed: r.seed})
		fmt.Printf("== load: targeting %s (workload regenerated at seed %d) ==\n", baseURL, r.seed)
	} else {
		supportN := r.supportN
		if supportN <= 0 {
			supportN = 200
		}
		dir, err := os.MkdirTemp("", "pricebench-load-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		start := time.Now()
		s, err := serve.New(serve.Config{
			DataDir:         dir,
			SnapshotEvery:   64,
			Algorithm:       "LPIP",
			SupportSize:     supportN,
			Shards:          r.shards,
			Seed:            r.seed,
			ValK:            100,
			BackgroundDrain: true,
			RequestTimeout:  10 * time.Second,
			MaxInflight:     256,
		})
		if err != nil {
			return err
		}
		defer s.Close()
		ts := httptest.NewServer(s.Routes())
		defer ts.Close()
		baseURL = ts.URL
		db = s.Broker().DB()
		fmt.Printf("== load: in-process marketd (support %d, durable, booted in %v) ==\n",
			supportN, time.Since(start).Round(time.Millisecond))
	}

	queries := workloads.Skewed(db)
	if len(queries) > 200 {
		queries = queries[:200]
	}
	w, err := loadgen.NewWorkload(db, queries, loadgen.WorkloadConfig{Seed: r.seed})
	if err != nil {
		return err
	}

	cfg := loadgen.Config{
		BaseURL:  baseURL,
		Rate:     r.loadRate,
		Duration: r.loadDur,
		Mix:      mix,
		Workers:  r.loadWorkers,
		Seed:     r.seed,
	}
	fmt.Printf("offered %.0f req/s for %v, mix %s\n", cfg.Rate, cfg.Duration, func() loadgen.Mix {
		if mix == (loadgen.Mix{}) {
			return loadgen.DefaultMix()
		}
		return mix
	}())
	res, err := loadgen.Run(cfg, w)
	if err != nil {
		return err
	}
	fmt.Println(res)

	if err := checkMetrics(baseURL); err != nil {
		return err
	}
	if r.loadSLO {
		// Benchmark-format lines for scripts/bench.sh (see docs/LOAD.md).
		fmt.Print(res.SLOLines())
	}
	if n := res.NonShedErrors(); n > 0 {
		return fmt.Errorf("load run produced %d non-shed errors", n)
	}
	return nil
}

// checkMetrics scrapes GET /metrics and validates the exposition format.
func checkMetrics(baseURL string) error {
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		return fmt.Errorf("scraping /metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("scraping /metrics: status %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("reading /metrics: %w", err)
	}
	if errs := metrics.Lint(string(data)); len(errs) != 0 {
		return fmt.Errorf("/metrics failed exposition lint: %v", errs[0])
	}
	samples := 0
	for _, line := range strings.Split(string(data), "\n") {
		if line != "" && !strings.HasPrefix(line, "#") {
			samples++
		}
	}
	fmt.Printf("metrics: /metrics lint-clean, %d samples\n", samples)
	return nil
}

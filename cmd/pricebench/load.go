package main

// The sustained-load SLO experiments (docs/LOAD.md): boot the real
// marketd serving stack in-process (internal/serve over httptest) — or
// target an already-running marketd via -load-addr — and drive it with
// open-loop mixed traffic (internal/loadgen) at a configured rate, mix
// and duration. "load" runs the default serving mix; "ingest" runs the
// streaming-ingest mix, where updates dominate the write share and half
// the update bodies are full-row inserts, so the database grows while
// quotes keep serving. Both report per-class throughput, shed/error
// counts and p50/p95/p99 latency; with -slo they also print
// Benchmark-format slo_load / slo_ingest lines that scripts/bench.sh
// folds into BENCH_<n>.json, so the bench-compare gate catches
// latency-under-load regressions the same way it catches
// microbenchmark ones.

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"time"

	"querypricing/internal/datagen"
	"querypricing/internal/loadgen"
	"querypricing/internal/metrics"
	"querypricing/internal/relational"
	"querypricing/internal/serve"
	"querypricing/internal/workloads"
)

// parseMix decodes "-mix quote=0.85,batch=0.05,update=0.05,purchase=0.05"
// (empty = loadgen.DefaultMix).
func parseMix(s string) (loadgen.Mix, error) {
	var m loadgen.Mix
	if s == "" {
		return m, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return m, fmt.Errorf("bad -mix element %q (want class=weight)", part)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(kv[1]), 64)
		if err != nil {
			return m, fmt.Errorf("bad -mix weight %q: %w", kv[1], err)
		}
		switch strings.TrimSpace(kv[0]) {
		case "quote":
			m.Quote = v
		case "batch":
			m.Batch = v
		case "update":
			m.Update = v
		case "purchase":
			m.Purchase = v
		default:
			return m, fmt.Errorf("unknown -mix class %q (quote|batch|update|purchase)", kv[0])
		}
	}
	return m, nil
}

// runLoad drives the default serving mix; runIngest drives the
// streaming-ingest mix (update-heavy, half the update bodies full-row
// inserts) and additionally reports database growth. Both share
// runLoadExperiment and differ only in mix, workload shape and the
// slo_<group> name their -slo lines carry.
func (r *runner) runLoad() error   { return r.runLoadExperiment(false) }
func (r *runner) runIngest() error { return r.runLoadExperiment(true) }

func (r *runner) runLoadExperiment(ingest bool) error {
	mix, err := parseMix(r.loadMix)
	if err != nil {
		return err
	}
	group := "load"
	if ingest {
		group = "ingest"
		if mix == (loadgen.Mix{}) {
			mix = loadgen.StreamingIngestMix()
		}
	}

	var (
		baseURL string
		db      *relational.Database
		srv     *serve.Server
	)
	if r.loadAddr != "" {
		baseURL = strings.TrimSuffix(r.loadAddr, "/")
		if !strings.HasPrefix(baseURL, "http") {
			baseURL = "http://" + baseURL
		}
		// The workload must be valid against the server's dataset:
		// regenerate the marketd demo world with the same -seed the server
		// was started with.
		db = datagen.World(datagen.WorldConfig{Countries: 239, Cities: 800, Seed: r.seed})
		fmt.Printf("== %s: targeting %s (workload regenerated at seed %d) ==\n", group, baseURL, r.seed)
	} else {
		supportN := r.supportN
		if supportN <= 0 {
			supportN = 200
		}
		dir, err := os.MkdirTemp("", "pricebench-load-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		start := time.Now()
		s, err := serve.New(serve.Config{
			DataDir:         dir,
			SnapshotEvery:   64,
			Algorithm:       "LPIP",
			SupportSize:     supportN,
			Shards:          r.shards,
			Seed:            r.seed,
			ValK:            100,
			BackgroundDrain: true,
			RequestTimeout:  10 * time.Second,
			MaxInflight:     256,
		})
		if err != nil {
			return err
		}
		defer s.Close()
		ts := httptest.NewServer(s.Routes())
		defer ts.Close()
		baseURL = ts.URL
		db = s.Broker().DB()
		srv = s
		fmt.Printf("== %s: in-process marketd (support %d, durable, booted in %v) ==\n",
			group, supportN, time.Since(start).Round(time.Millisecond))
	}

	queries := workloads.Skewed(db)
	if len(queries) > 200 {
		queries = queries[:200]
	}
	wcfg := loadgen.WorkloadConfig{Seed: r.seed}
	if ingest {
		wcfg.IngestFraction = 0.5
	}
	w, err := loadgen.NewWorkload(db, queries, wcfg)
	if err != nil {
		return err
	}
	rowsBefore := countRows(db)

	cfg := loadgen.Config{
		BaseURL:  baseURL,
		Rate:     r.loadRate,
		Duration: r.loadDur,
		Mix:      mix,
		Workers:  r.loadWorkers,
		Seed:     r.seed,
	}
	fmt.Printf("offered %.0f req/s for %v, mix %s\n", cfg.Rate, cfg.Duration, func() loadgen.Mix {
		if mix == (loadgen.Mix{}) {
			return loadgen.DefaultMix()
		}
		return mix
	}())
	res, err := loadgen.Run(cfg, w)
	if err != nil {
		return err
	}
	fmt.Println(res)

	if srv != nil {
		// In-process only: with -load-addr the remote database is opaque.
		cur := srv.Broker().DB()
		fmt.Printf("database: %d -> %d rows (version %d)\n", rowsBefore, countRows(cur), srv.Broker().Version())
		if ingest && countRows(cur) <= rowsBefore && res.Class(loadgen.ClassUpdate).OK > 0 {
			return fmt.Errorf("ingest run applied updates but the database did not grow")
		}
	}
	if err := checkMetrics(baseURL); err != nil {
		return err
	}
	if r.loadSLO {
		// Benchmark-format lines for scripts/bench.sh (see docs/LOAD.md).
		fmt.Print(res.SLOLinesNamed(group))
	}
	if n := res.NonShedErrors(); n > 0 {
		return fmt.Errorf("%s run produced %d non-shed errors", group, n)
	}
	return nil
}

// countRows sums physical slots (live + tombstoned) across all tables —
// inserts grow it monotonically, which is the ingest signal we report.
func countRows(db *relational.Database) int {
	n := 0
	for _, tn := range db.TableNames() {
		n += db.Table(tn).NumRows()
	}
	return n
}

// checkMetrics scrapes GET /metrics and validates the exposition format.
func checkMetrics(baseURL string) error {
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		return fmt.Errorf("scraping /metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("scraping /metrics: status %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("reading /metrics: %w", err)
	}
	if errs := metrics.Lint(string(data)); len(errs) != 0 {
		return fmt.Errorf("/metrics failed exposition lint: %v", errs[0])
	}
	samples := 0
	for _, line := range strings.Split(string(data), "\n") {
		if line != "" && !strings.HasPrefix(line, "#") {
			samples++
		}
	}
	fmt.Printf("metrics: /metrics lint-clean, %d samples\n", samples)
	return nil
}

package main

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"querypricing/internal/engine"
	"querypricing/internal/experiments"
	"querypricing/internal/hypergraph"
	"querypricing/internal/market"
	"querypricing/internal/online"
	"querypricing/internal/pricing"
	"querypricing/internal/relational"
	"querypricing/internal/store"
	"querypricing/internal/support"
	"querypricing/internal/valuation"
)

// runOnline reproduces the "Learning buyer valuations" future-work
// experiment: buyers with fixed hidden valuations arrive online and three
// learners adapt posted prices from purchase feedback only.
func (r *runner) runOnline() error {
	sc, err := r.scenario(experiments.Skewed)
	if err != nil {
		return err
	}
	rounds := 20000
	fmt.Println("== Online posted-price learning (Section 7.2 future work) ==")
	fmt.Printf("skewed workload, %d rounds\n", rounds)
	for _, model := range []valuation.Model{
		valuation.Uniform{K: 100},
		valuation.Additive{K: 100, Dist: valuation.IndexUniform},
	} {
		valuation.Apply(sc.H, model, r.seed)
		grid := online.PriceGrid(1, 120, 16)
		fmt.Printf("\n-- valuations: %s --\n", model.Name())
		fmt.Printf("%-16s %12s %8s %10s %30s\n", "learner", "revenue", "sales", "vs-fixed", "revenue by quarter")
		learners := []online.Pricer{
			online.NewUCBBundle(grid),
			online.NewEXP3Bundle(grid, 0.1, r.seed),
			online.NewMultiplicativeItem(sc.H.NumItems(), 1, 0.1),
		}
		for _, l := range learners {
			res := online.Simulate(sc.H, l, rounds, r.seed)
			fmt.Printf("%-16s %12.1f %8d %10.3f %30v\n",
				res.Learner, res.Revenue, res.Sales, res.Ratio(), quarters(res))
		}
	}
	fmt.Println("\nvs-fixed = revenue / best fixed flat price in hindsight.")
	fmt.Println("Flat-price bandits are robust under size-independent valuations; the")
	fmt.Println("MWU item learner dominates (and can exceed 1.0) when value is")
	fmt.Println("additive over items — the online echo of Lemma 2's separation.")
	return nil
}

func quarters(r online.SimResult) [4]int {
	var out [4]int
	for i, v := range r.CumulativeByQuarter {
		out[i] = int(v)
	}
	return out
}

// runSupportSelection reproduces the "Choosing support set" future-work
// experiment: query-aware (targeted) support vs random sampling.
func (r *runner) runSupportSelection() error {
	sc, err := r.scenario(experiments.Skewed)
	if err != nil {
		return err
	}
	// The selective per-country slice is where random sampling struggles.
	sel := sc.Queries[35:335]
	size := 300

	start := time.Now()
	randomSet, err := support.Generate(sc.DB, support.GenOptions{Size: size, Seed: r.seed})
	if err != nil {
		return err
	}
	hr, _, err := support.BuildHypergraph(randomSet, sel, support.BuildOptions{})
	if err != nil {
		return err
	}
	randomTime := time.Since(start)

	start = time.Now()
	targetSet, err := support.TargetedGenerate(sc.DB, sel, support.GenOptions{Size: size, Seed: r.seed})
	if err != nil {
		return err
	}
	ht, _, err := support.BuildHypergraph(targetSet, sel, support.BuildOptions{})
	if err != nil {
		return err
	}
	targetTime := time.Since(start)

	valuation.Apply(hr, valuation.Uniform{K: 100}, r.seed+1)
	valuation.Apply(ht, valuation.Uniform{K: 100}, r.seed+1)

	fmt.Println("== Support-set selection (Section 7.2 future work) ==")
	fmt.Printf("%d selective queries, |S| = %d\n", len(sel), size)
	fmt.Printf("%-12s %12s %12s %12s %12s %12s %12s\n",
		"support", "build", "empty edges", "unique-item", "UIP", "LPIP", "Layering")
	opts := engine.Options{LPIPMaxCandidates: r.lpipCap}
	report := func(name string, d time.Duration, h *hypergraph.Hypergraph) error {
		st := h.ComputeStats()
		sum := h.TotalValuation()
		revs := make([]float64, 0, 3)
		for _, algo := range []string{"UIP", "LPIP", "Layering"} {
			res, err := engine.Price(algo, h, opts)
			if err != nil {
				return err
			}
			revs = append(revs, res.Revenue/sum)
		}
		fmt.Printf("%-12s %12s %12d %12d %12.3f %12.3f %12.3f\n",
			name, d.Round(time.Millisecond), st.EmptyEdges, st.UniqueItem,
			revs[0], revs[1], revs[2])
		return nil
	}
	if err := report("random", randomTime, hr); err != nil {
		return err
	}
	if err := report("targeted", targetTime, ht); err != nil {
		return err
	}
	fmt.Println("\nTargeted supports trade construction time for fewer empty conflict")
	fmt.Println("sets and more unique items — exactly the lever the paper proposes.")
	return nil
}

// runCIPAblation sweeps CIP's epsilon (the paper tunes it per workload to
// trade the (1+eps) approximation factor against runtime, Section 6.4).
func (r *runner) runCIPAblation() error {
	sc, err := r.scenario(experiments.Skewed)
	if err != nil {
		return err
	}
	valuation.Apply(sc.H, valuation.Uniform{K: 100}, r.seed)
	sum := sc.H.TotalValuation()
	fmt.Println("== CIP epsilon ablation (Section 6.4) ==")
	fmt.Printf("%8s %10s %12s %10s\n", "eps", "LPs", "revenue", "runtime")
	for _, eps := range []float64{0.2, 0.5, 1, 2, 4} {
		res, err := engine.Price("CIP", sc.H, engine.Options{CIPEpsilon: eps})
		if err != nil {
			return err
		}
		fmt.Printf("%8.1f %10d %12.3f %10s\n",
			eps, res.LPSolves, res.Revenue/sum, res.Runtime.Round(time.Millisecond))
	}
	fmt.Println("\nSmaller eps = denser capacity grid = more LPs: better revenue at")
	fmt.Println("higher cost, the trade-off the paper works around by raising eps.")
	return nil
}

// runRefineAblation measures the UBP -> item pricing LP refinement of
// Section 6.3 (the paper reports 0.78 -> 0.99 on TPC-H).
func (r *runner) runRefineAblation() error {
	fmt.Println("== UBP LP-refinement ablation (Section 6.3) ==")
	fmt.Printf("%-10s %12s %12s %12s\n", "workload", "UBP", "UBP+LP", "uplift")
	for _, w := range experiments.AllWorkloads {
		sc, err := r.scenario(w)
		if err != nil {
			return err
		}
		valuation.Apply(sc.H, valuation.Additive{K: 1, Dist: valuation.IndexUniform}, r.seed)
		sum := sc.H.TotalValuation()
		ubp, err := engine.Price("UBP", sc.H, engine.Options{})
		if err != nil {
			return err
		}
		ref, err := pricing.RefineUniformBundle(sc.H, ubp.BundlePrice)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %12.3f %12.3f %12.2fx\n",
			w, ubp.Revenue/sum, ref.Revenue/sum, safeDiv(ref.Revenue, ubp.Revenue))
	}
	return nil
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// runLiveUpdates demonstrates the live-update path end to end: a broker
// serving the skewed workload absorbs batches of random cell updates
// (Broker.Update), reporting per-batch update latency, how much compiled
// plan state survived (delta-maintained vs invalidated), and the warm
// requote latency afterwards. It closes by verifying that the updated
// broker's quotes are byte-identical to a fresh broker built over the
// final database with the same support neighbors.
func (r *runner) runLiveUpdates() error {
	sc, err := r.scenario(experiments.Skewed)
	if err != nil {
		return err
	}
	broker, err := market.NewBrokerWithSupport(sc.DB, sc.Set, market.Config{
		Seed: r.seed, LPIPCandidates: r.lpipCap, Shards: r.shards,
	})
	if err != nil {
		return err
	}
	if _, err := broker.Calibrate(sc.Queries, valuation.Uniform{K: 100}, market.LPIP); err != nil {
		return err
	}
	probe := sc.Queries[:40]
	if _, err := broker.QuoteBatch(probe); err != nil {
		return err // warm the plan caches before measuring
	}

	rng := rand.New(rand.NewSource(r.seed + 99))
	randomBatch := func(db *relational.Database, n int) []relational.CellChange {
		names := db.TableNames()
		out := make([]relational.CellChange, 0, n)
		for len(out) < n {
			tn := names[rng.Intn(len(names))]
			t := db.Table(tn)
			row, col := rng.Intn(t.NumRows()), rng.Intn(len(t.Schema.Cols))
			domain := db.ActiveDomain(tn, t.Schema.Cols[col].Name)
			if len(domain) < 2 {
				continue
			}
			out = append(out, relational.CellChange{
				Table: tn, Row: row, Col: col, New: domain[rng.Intn(len(domain))],
			})
		}
		return out
	}

	fmt.Println("== Live base-database updates (docs/UPDATES.md) ==")
	fmt.Printf("%8s %8s %12s %10s %14s\n",
		"batch", "cells", "update", "deferred", "requote(40q)")
	var changes []relational.CellChange
	for batch, n := range []int{1, 4, 16, 64} {
		ch := randomBatch(broker.DB(), n)
		changes = append(changes, ch...)
		start := time.Now()
		version, stats, err := broker.Update(ch)
		if err != nil {
			return err
		}
		updateTime := time.Since(start)
		// The first post-update requote pays the lazy, coalesced rebase of
		// the plans it touches; everything else stays deferred.
		start = time.Now()
		if _, err := broker.QuoteBatch(probe); err != nil {
			return err
		}
		fmt.Printf("%8d %8d %12v %10d %14v   (version %d)\n",
			batch+1, n, updateTime.Round(time.Microsecond),
			stats.PlansDeferred,
			time.Since(start).Round(time.Microsecond), version)
	}
	// Fold everything that is still deferred (what a background drainer —
	// market.Config.BackgroundDrain — would do while the broker idles).
	start := time.Now()
	drain := broker.DrainPlans()
	fmt.Printf("%8s %8s %12v %10s   (%d rebased, %d recompiled)\n",
		"drain", "-", time.Since(start).Round(time.Microsecond), "-",
		drain.PlansRebased, drain.PlansInvalidated)

	// Equivalence: a fresh broker on the final database with the same
	// neighbors must quote identically, and the advanced set's conflict
	// sets must match a fresh set's member for member (the accumulated
	// change list advances sc.Set across all four versions in one jump).
	freshSet := &support.Set{DB: broker.DB(), Neighbors: sc.Set.Neighbors, Shards: r.shards}
	fresh, err := market.NewBrokerWithSupport(broker.DB(), freshSet, market.Config{
		Seed: r.seed, LPIPCandidates: r.lpipCap,
	})
	if err != nil {
		return err
	}
	if _, err := fresh.Calibrate(sc.Queries, valuation.Uniform{K: 100}, market.LPIP); err != nil {
		return err
	}
	advSet, _ := sc.Set.Advance(broker.DB(), changes)
	for _, q := range probe {
		a, err := broker.Quote(q)
		if err != nil {
			return err
		}
		b, err := fresh.Quote(q)
		if err != nil {
			return err
		}
		if a.Price != b.Price || a.ConflictSize != b.ConflictSize {
			return fmt.Errorf("update equivalence violated for %s: updated %+v, fresh %+v", q.Name, a, b)
		}
		got, err := support.ConflictSet(advSet, q)
		if err != nil {
			return err
		}
		want, err := support.ConflictSet(freshSet, q)
		if err != nil {
			return err
		}
		if len(got) != len(want) {
			return fmt.Errorf("conflict-set membership diverged for %s: advanced %v, fresh %v", q.Name, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				return fmt.Errorf("conflict-set membership diverged for %s: advanced %v, fresh %v", q.Name, got, want)
			}
		}
	}
	fmt.Printf("\nequivalence: %d updated-broker quotes (prices and member-for-member conflict sets) identical to a fresh broker on version %d\n",
		len(probe), broker.Version())
	return nil
}

// runRestart measures the durability story's payoff (docs/OPERATIONS.md):
// what a cold boot costs with calibration versus restoring a snapshot, and
// that the restored broker quotes byte-identically. The snapshot round
// trips through a real data directory, not just memory.
func (r *runner) runRestart() error {
	sc, err := r.scenario(experiments.Skewed)
	if err != nil {
		return err
	}
	cfg := market.Config{Seed: r.seed, LPIPCandidates: r.lpipCap, Shards: r.shards}

	// Cold path: build + calibrate from scratch.
	coldStart := time.Now()
	broker, err := market.NewBrokerWithSupport(sc.DB, sc.Set, cfg)
	if err != nil {
		return err
	}
	if _, err := broker.Calibrate(sc.Queries, valuation.Uniform{K: 100}, market.LPIP); err != nil {
		return err
	}
	cold := time.Since(coldStart)

	// Persist through a real store directory and recover from it.
	dir, err := os.MkdirTemp("", "pricebench-restart-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(dir)
	if err != nil {
		return err
	}
	defer st.Close()
	if _, err := st.Load(); err != nil {
		return err
	}
	writeStart := time.Now()
	if err := st.WriteSnapshot(broker.Snapshot()); err != nil {
		return err
	}
	writeTime := time.Since(writeStart)
	st.Close()

	restoreStart := time.Now()
	st2, err := store.Open(dir)
	if err != nil {
		return err
	}
	defer st2.Close()
	res, err := st2.Load()
	if err != nil {
		return err
	}
	if res.Snapshot == nil {
		return fmt.Errorf("restart: no snapshot recovered from %s", dir)
	}
	restored, err := market.Restore(*res.Snapshot, cfg)
	if err != nil {
		return err
	}
	restore := time.Since(restoreStart)

	probe := sc.Queries[:40]
	want, err := broker.QuoteBatch(probe)
	if err != nil {
		return err
	}
	got, err := restored.QuoteBatch(probe)
	if err != nil {
		return err
	}
	for i := range want {
		if want[i] != got[i] {
			return fmt.Errorf("restart: quote %d diverged: calibrated %+v, restored %+v", i, want[i], got[i])
		}
	}

	stats := st2.Stats()
	fmt.Println("== Restart: calibrate vs restore (docs/OPERATIONS.md) ==")
	fmt.Printf("%-28s %12v\n", "cold boot (build+calibrate)", cold.Round(time.Millisecond))
	fmt.Printf("%-28s %12v\n", "snapshot write", writeTime.Round(time.Millisecond))
	fmt.Printf("%-28s %12v\n", "restore (load+rebuild)", restore.Round(time.Millisecond))
	if restore > 0 {
		fmt.Printf("%-28s %12.1fx\n", "restore speedup", float64(cold)/float64(restore))
	}
	fmt.Printf("%-28s %12d bytes (version %d)\n", "snapshot size", stats.SnapshotBytes, stats.SnapshotVersion)
	fmt.Printf("\nidentity: %d quotes byte-identical between the calibrated and restored brokers\n", len(probe))
	return nil
}

// Command pricebench regenerates the paper's experimental artifacts: every
// figure (4, 5a, 5b, 6a, 6b, 7, 8) and table (3, 4, 5, 6) of Chawla et al.,
// "Revenue Maximization for Query Pricing" (PVLDB 13(1), 2019).
//
// Usage:
//
//	pricebench -experiment fig5a             # one artifact
//	pricebench -experiment all -scale 2      # everything, larger instances
//	pricebench -list                         # show the experiment index
//
// Absolute numbers differ from the paper (different hardware, synthetic
// data, micro scales); the series shapes — which algorithm wins where, how
// revenue and runtime move with the support size — are the reproduction
// target. Hypergraph construction (the paper's own
// bottleneck, Table 3) runs on the sharded incremental conflict-set
// engine of internal/support and internal/plan: compiled query plans
// probed with each neighbor's deltas over shard × query tiles on a worker
// pool (-shards); see README "Performance", docs/ARCHITECTURE.md and
// BENCH_3.json.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"querypricing/internal/engine"
	"querypricing/internal/experiments"
	"querypricing/internal/valuation"
)

var experimentIndex = []struct{ id, what string }{
	{"fig4", "hyperedge size distributions, all four workloads"},
	{"fig5a", "sampled valuations (uniform, zipf): skewed + uniform workloads"},
	{"fig5b", "scaled valuations (exp, normal): skewed + uniform workloads"},
	{"fig6a", "sampled valuations: SSB + TPC-H workloads"},
	{"fig6b", "scaled valuations: SSB + TPC-H workloads"},
	{"fig7", "additive item-price model, all workloads"},
	{"fig8", "revenue vs support size: skewed + SSB"},
	{"tab3", "hypergraph characteristics"},
	{"tab4", "algorithm runtimes per workload"},
	{"tab5", "runtimes vs support size (skewed)"},
	{"tab6", "runtimes vs support size (SSB)"},
	{"lemmas", "worst-case gap constructions (Lemmas 2-4)"},
	{"online", "online posted-price learning (Section 7.2 future work)"},
	{"support-selection", "query-aware support selection vs random (Section 7.2)"},
	{"ablation-cip", "CIP epsilon sensitivity (Section 6.4)"},
	{"ablation-refine", "UBP -> item pricing LP refinement (Section 6.3)"},
	{"live-updates", "base-database update latency and plan survival (docs/UPDATES.md)"},
	{"restart", "calibrate vs snapshot-restore boot cost and quote identity (docs/OPERATIONS.md)"},
	{"load", "sustained-load SLO harness: open-loop mixed traffic vs marketd (docs/LOAD.md)"},
	{"ingest", "streaming-ingest load: insert-bearing update mix vs marketd (docs/LOAD.md)"},
	{"compact", "delete-heavy churn: quote SLOs through compaction epochs, slot growth with/without (docs/OPERATIONS.md)"},
}

func main() {
	os.Exit(realMain())
}

// realMain is main with an exit code, so profile teardown (deferred below)
// runs before the process exits.
func realMain() int {
	var (
		experiment = flag.String("experiment", "", "artifact id (see -list) or 'all'")
		list       = flag.Bool("list", false, "print the experiment index and exit")
		scale      = flag.Float64("scale", 1, "dataset scale multiplier")
		supportN   = flag.Int("support", 0, "support size |S| (0 = workload default)")
		shards     = flag.Int("shards", 0, "support-set shards (<= 0 = one shard)")
		seed       = flag.Int64("seed", 1, "random seed")
		lpipCap    = flag.Int("lpip-candidates", 16, "LPIP threshold cap (0 = all)")
		skipCIP    = flag.Bool("skip-cip", false, "skip CIP and XOS (much faster)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		algos      = flag.String("algorithms", "",
			"comma-separated pricing algorithms for the figure/table revenue sweeps "+
				"(default all: "+strings.Join(engine.List(), ",")+"); special-case "+
				"experiments (lemmas, ablations, support-selection) keep their fixed rosters")

		loadRate    = flag.Float64("rate", 300, "load experiment: offered request rate (req/s)")
		loadDur     = flag.Duration("duration", 4*time.Second, "load experiment: run duration")
		loadMix     = flag.String("mix", "", "load experiment: traffic mix, e.g. quote=0.85,batch=0.05,update=0.05,purchase=0.05 (empty = that default)")
		loadAddr    = flag.String("load-addr", "", "load experiment: target a running marketd at this address instead of booting in-process (its -seed must match)")
		loadWorkers = flag.Int("load-workers", 0, "load experiment: open-loop lanes (0 = scaled to rate)")
		loadSLO     = flag.Bool("slo", false, "load/ingest experiments: print Benchmark-format slo_<experiment> lines for scripts/bench.sh")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pricebench: -cpuprofile: %v\n", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "pricebench: -cpuprofile: %v\n", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pricebench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "pricebench: -memprofile: %v\n", err)
			}
		}()
	}

	var roster []string
	if *algos != "" {
		for _, name := range strings.Split(*algos, ",") {
			name = strings.TrimSpace(name)
			if _, err := engine.Get(name); err != nil {
				fmt.Fprintf(os.Stderr, "pricebench: %v\n", err)
				return 2
			}
			roster = append(roster, name)
		}
	}

	if *list || *experiment == "" {
		fmt.Println("pricebench experiments:")
		for _, e := range experimentIndex {
			fmt.Printf("  %-8s %s\n", e.id, e.what)
		}
		if *experiment == "" && !*list {
			return 2
		}
		return 0
	}

	r := &runner{
		scale:       *scale,
		supportN:    *supportN,
		shards:      *shards,
		seed:        *seed,
		lpipCap:     *lpipCap,
		skipCIP:     *skipCIP,
		roster:      roster,
		cache:       map[experiments.Workload]*experiments.Scenario{},
		loadRate:    *loadRate,
		loadDur:     *loadDur,
		loadMix:     *loadMix,
		loadAddr:    *loadAddr,
		loadWorkers: *loadWorkers,
		loadSLO:     *loadSLO,
	}
	ids := []string{*experiment}
	if *experiment == "all" {
		ids = nil
		for _, e := range experimentIndex {
			ids = append(ids, e.id)
		}
	}
	for _, id := range ids {
		if err := r.run(id); err != nil {
			fmt.Fprintf(os.Stderr, "pricebench: %s: %v\n", id, err)
			return 1
		}
	}
	return 0
}

type runner struct {
	scale    float64
	supportN int
	shards   int
	seed     int64
	lpipCap  int
	skipCIP  bool
	roster   []string // engine algorithm names (nil = full registry)
	cache    map[experiments.Workload]*experiments.Scenario

	// Load-experiment knobs (see load.go and docs/LOAD.md).
	loadRate    float64
	loadDur     time.Duration
	loadMix     string
	loadAddr    string
	loadWorkers int
	loadSLO     bool
}

func (r *runner) scenario(w experiments.Workload) (*experiments.Scenario, error) {
	if sc, ok := r.cache[w]; ok {
		return sc, nil
	}
	start := time.Now()
	fmt.Printf("-- building %s scenario (scale %.2g)...\n", w, r.scale)
	sc, err := experiments.Build(experiments.Config{
		Workload:    w,
		Scale:       r.scale,
		SupportSize: r.supportN,
		Shards:      r.shards,
		Seed:        r.seed,
	})
	if err != nil {
		return nil, err
	}
	fmt.Printf("-- %s ready in %v: %s (construction: %d evals, %d pruned-by-columns, %d pruned-by-predicates)\n",
		w, time.Since(start).Round(time.Millisecond), sc.H,
		sc.Stats.QueryEvals, sc.Stats.PrunedByCols, sc.Stats.PrunedByPred)
	r.cache[w] = sc
	return sc, nil
}

func (r *runner) tuning(w experiments.Workload) experiments.Tuning {
	t := experiments.DefaultTuning(w)
	t.LPIPCandidates = r.lpipCap
	t.SkipCIP = t.SkipCIP || r.skipCIP
	t.Roster = r.roster
	return t
}

func (r *runner) run(id string) error {
	switch id {
	case "fig4":
		for _, w := range experiments.AllWorkloads {
			sc, err := r.scenario(w)
			if err != nil {
				return err
			}
			fmt.Println(experiments.FormatHistogram("Figure 4: "+string(w)+" hyperedge sizes", sc.H, 12))
		}
	case "fig5a":
		return r.revenueSweep("Figure 5a", []experiments.Workload{experiments.Skewed, experiments.Uniform}, experiments.SampledModels())
	case "fig5b":
		return r.revenueSweep("Figure 5b", []experiments.Workload{experiments.Skewed, experiments.Uniform}, experiments.ScaledModels())
	case "fig6a":
		return r.revenueSweep("Figure 6a", []experiments.Workload{experiments.SSB, experiments.TPCH}, experiments.SampledModels())
	case "fig6b":
		return r.revenueSweep("Figure 6b", []experiments.Workload{experiments.SSB, experiments.TPCH}, experiments.ScaledModels())
	case "fig7":
		return r.revenueSweep("Figure 7", experiments.AllWorkloads, experiments.AdditiveModels())
	case "fig8":
		for _, w := range []experiments.Workload{experiments.Skewed, experiments.SSB} {
			sc, err := r.scenario(w)
			if err != nil {
				return err
			}
			sizes := supportGrid(sc.H.NumItems())
			sweep, err := experiments.SupportSweep(sc, sizes, valuation.Uniform{K: 100}, r.seed, r.tuning(w))
			if err != nil {
				return err
			}
			fmt.Println(experiments.FormatSupportSweep(fmt.Sprintf("Figure 8: %s, uniform[1,100]", w), sweep))
		}
	case "tab3":
		var scs []*experiments.Scenario
		for _, w := range experiments.AllWorkloads {
			sc, err := r.scenario(w)
			if err != nil {
				return err
			}
			scs = append(scs, sc)
		}
		fmt.Println(experiments.FormatStatsTable(scs))
	case "tab4":
		for _, w := range experiments.AllWorkloads {
			sc, err := r.scenario(w)
			if err != nil {
				return err
			}
			tune := r.tuning(w)
			tune.WithBound = false
			pts, err := experiments.Sweep(sc.H, []valuation.Model{valuation.Uniform{K: 100}}, r.seed, tune)
			if err != nil {
				return err
			}
			fmt.Println(experiments.FormatRuntimeTable(
				fmt.Sprintf("Table 4: %s (hypergraph construction: %v)", w, sc.BuildTime.Round(time.Millisecond)), pts))
		}
	case "tab5":
		return r.supportRuntimeSweep("Table 5", experiments.Skewed)
	case "tab6":
		return r.supportRuntimeSweep("Table 6", experiments.SSB)
	case "lemmas":
		runLemmas()
	case "online":
		return r.runOnline()
	case "support-selection":
		return r.runSupportSelection()
	case "ablation-cip":
		return r.runCIPAblation()
	case "ablation-refine":
		return r.runRefineAblation()
	case "live-updates":
		return r.runLiveUpdates()
	case "restart":
		return r.runRestart()
	case "load":
		return r.runLoad()
	case "ingest":
		return r.runIngest()
	case "compact":
		return r.runCompact()
	default:
		return fmt.Errorf("unknown experiment %q (try -list)", id)
	}
	return nil
}

func (r *runner) revenueSweep(title string, ws []experiments.Workload, models []valuation.Model) error {
	for _, w := range ws {
		sc, err := r.scenario(w)
		if err != nil {
			return err
		}
		pts, err := experiments.Sweep(sc.H, models, r.seed, r.tuning(w))
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatRevenueTable(
			fmt.Sprintf("%s: %s workload, %d queries", title, w, len(sc.Queries)), pts))
	}
	return nil
}

func (r *runner) supportRuntimeSweep(title string, w experiments.Workload) error {
	sc, err := r.scenario(w)
	if err != nil {
		return err
	}
	sizes := supportGrid(sc.H.NumItems())
	sweep, err := experiments.SupportSweep(sc, sizes, valuation.Uniform{K: 100}, r.seed, r.tuning(w))
	if err != nil {
		return err
	}
	fmt.Println(experiments.FormatSupportSweep(
		fmt.Sprintf("%s: %s runtimes and revenue vs |S|", title, w), sweep))
	return nil
}

// supportGrid picks a sweep of support sizes up to the generated maximum,
// mirroring the paper's {100, 500, 1000, 5000, 15000} shape.
func supportGrid(max int) []int {
	frac := []float64{0.01, 0.05, 0.1, 0.33, 0.66, 1.0}
	var out []int
	prev := 0
	for _, f := range frac {
		n := int(f * float64(max))
		if n < 10 {
			n = 10
		}
		if n > max {
			n = max
		}
		if n != prev {
			out = append(out, n)
			prev = n
		}
	}
	return out
}

func runLemmas() {
	fmt.Println("== Lemmas 2-4: measured gaps of succinct pricings vs OPT ==")
	fmt.Println(strings.Repeat("-", 64))
	fmt.Println(lemmasReport())
}

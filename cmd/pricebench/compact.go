package main

// The compaction SLO experiment (docs/OPERATIONS.md, docs/UPDATES.md):
// drive the delete-heavy churn mix — every pooled update body a full-row
// insert, half the issued updates deletes of rows the run itself
// inserted — against two in-process marketd boots that differ only in
// trigger policy: one auto-compacts at a 30% tombstone fraction, the
// other never compacts. The run reports quote latency *through* the
// compaction epochs (the tentpole claim: epochs serialize with writes,
// never with quotes), physical slot growth with and without compaction
// (the bounded-growth claim), and a price-identity check across an
// explicit POST /compact (the correctness claim). With -slo it prints
// Benchmark-format slo_compact lines for scripts/bench.sh.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"querypricing/internal/loadgen"
	"querypricing/internal/market"
	"querypricing/internal/serve"
	"querypricing/internal/workloads"
)

// compactBoot is one booted serving stack for the compaction experiment.
type compactBoot struct {
	srv *serve.Server
	ts  *httptest.Server
	dir string
}

func (b *compactBoot) close() {
	b.ts.Close()
	b.srv.Close()
	os.RemoveAll(b.dir)
}

// bootForCompact boots a durable in-process marketd with the given
// auto-compaction threshold (0 = never compact).
func (r *runner) bootForCompact(threshold float64) (*compactBoot, error) {
	supportN := r.supportN
	if supportN <= 0 {
		supportN = 200
	}
	dir, err := os.MkdirTemp("", "pricebench-compact-*")
	if err != nil {
		return nil, err
	}
	s, err := serve.New(serve.Config{
		DataDir:          dir,
		SnapshotEvery:    64,
		Algorithm:        "LPIP",
		SupportSize:      supportN,
		Shards:           r.shards,
		Seed:             r.seed,
		ValK:             100,
		BackgroundDrain:  true,
		RequestTimeout:   10 * time.Second,
		MaxInflight:      256,
		CompactThreshold: threshold,
		CompactMinRows:   64,
	})
	if err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	return &compactBoot{srv: s, ts: httptest.NewServer(s.Routes()), dir: dir}, nil
}

// churn drives the delete-heavy mix against one boot and returns the
// run's results.
func (r *runner) churn(b *compactBoot, mix loadgen.Mix) (*loadgen.Result, error) {
	db := b.srv.Broker().DB()
	queries := workloads.Skewed(db)
	if len(queries) > 200 {
		queries = queries[:200]
	}
	w, err := loadgen.NewWorkload(db, queries, loadgen.WorkloadConfig{
		Seed:           r.seed,
		IngestFraction: 1, // every pooled update body is an insert; deletes are built per-lane
	})
	if err != nil {
		return nil, err
	}
	return loadgen.Run(loadgen.Config{
		BaseURL:        b.ts.URL,
		Rate:           r.loadRate,
		Duration:       r.loadDur,
		Mix:            mix,
		Workers:        r.loadWorkers,
		Seed:           r.seed,
		DeleteFraction: 0.5,
	}, w)
}

func (r *runner) runCompact() error {
	mix, err := parseMix(r.loadMix)
	if err != nil {
		return err
	}
	if mix == (loadgen.Mix{}) {
		mix = loadgen.DeleteHeavyMix()
	}

	// Leg 1: auto-compaction on, with a trigger policy scaled to a bench
	// run: the churn tombstones a few percent of each table, so a 5%
	// threshold keeps epochs firing throughout. Quote latency here rides
	// through every epoch.
	on, err := r.bootForCompact(0.05)
	if err != nil {
		return err
	}
	defer on.close()
	fmt.Printf("== compact: churn vs auto-compacting marketd (threshold 0.05) ==\n")
	fmt.Printf("offered %.0f req/s for %v, mix %s, delete fraction 0.5\n", r.loadRate, r.loadDur, mix)
	resOn, err := r.churn(on, mix)
	if err != nil {
		return err
	}
	fmt.Println(resOn)
	if n := resOn.TotalStale(); n > 0 {
		fmt.Printf("stale-coordinate deletes refused: %d (an epoch renumbered lane slots; lanes resync from the response epoch counter)\n", n)
	}
	onSlots, onLive := slotStats(on.srv.Broker())
	epochs := on.srv.Broker().Compactions()
	fmt.Printf("compacted run: %d epochs, %d slots / %d live rows (%.2fx)\n",
		epochs, onSlots, onLive, float64(onSlots)/float64(onLive))

	// Leg 2: identical churn, compaction disabled — the unbounded-growth
	// baseline.
	off, err := r.bootForCompact(0)
	if err != nil {
		return err
	}
	defer off.close()
	fmt.Printf("== compact: identical churn, compaction disabled ==\n")
	resOff, err := r.churn(off, mix)
	if err != nil {
		return err
	}
	offSlots, offLive := slotStats(off.srv.Broker())
	fmt.Printf("uncompacted run: %d slots / %d live rows (%.2fx)\n",
		offSlots, offLive, float64(offSlots)/float64(offLive))

	// Correctness leg: the uncompacted boot is full of tombstones — quote
	// a sample, compact explicitly over HTTP, quote again. Prices,
	// conflict sizes and informativeness must be identical; only the
	// version may move (the epoch is a version bump).
	if err := checkCompactIdentity(off.ts.URL, off.srv.Broker()); err != nil {
		return err
	}
	if err := checkMetrics(on.ts.URL); err != nil {
		return err
	}

	if r.loadSLO {
		fmt.Print(resOn.SLOLinesNamed("compact"))
		// Slot-growth trajectory: physical slots at run end, with and
		// without compaction, in the same Benchmark value slot the SLO
		// lines use (the comparator treats it as a plain magnitude).
		fmt.Printf("Benchmarkslo_compact/slots_compacted 1 %d ns/op\n", onSlots)
		fmt.Printf("Benchmarkslo_compact/slots_uncompacted 1 %d ns/op\n", offSlots)
		fmt.Printf("Benchmarkslo_compact/epochs 1 %d ns/op\n", epochs)
	}
	if n := resOn.NonShedErrors() + resOff.NonShedErrors(); n > 0 {
		return fmt.Errorf("compact runs produced %d non-shed errors", n)
	}
	if epochs == 0 {
		return fmt.Errorf("churn never triggered auto-compaction (threshold 0.05); raise -rate or -duration")
	}
	if onSlots >= offSlots && offSlots > 0 {
		return fmt.Errorf("compaction did not reduce slot growth: %d slots with vs %d without", onSlots, offSlots)
	}
	return nil
}

// slotStats sums physical slots and live rows across all tables.
func slotStats(b *market.Broker) (slots, live int) {
	for _, ts := range b.TableStats() {
		slots += ts.Slots
		live += ts.Live
	}
	return slots, live
}

// checkCompactIdentity asserts quotes are price-identical across an
// explicit POST /compact: same Price, ConflictSize and Informative for
// every sampled query; only Version moves.
func checkCompactIdentity(baseURL string, b *market.Broker) error {
	queries := workloads.Skewed(b.DB())
	if len(queries) > 20 {
		queries = queries[:20]
	}
	before := make([]market.Quote, len(queries))
	for i, q := range queries {
		quote, err := b.Quote(q)
		if err != nil {
			return fmt.Errorf("pre-compaction quote %q: %w", q.Name, err)
		}
		before[i] = quote
	}
	resp, err := http.Post(baseURL+"/compact", "application/json", bytes.NewReader(nil))
	if err != nil {
		return fmt.Errorf("POST /compact: %w", err)
	}
	var body struct {
		Compacted bool                `json:"compacted"`
		Stats     market.CompactStats `json:"stats"`
	}
	err = json.NewDecoder(resp.Body).Decode(&body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST /compact: status %d, decode err %v", resp.StatusCode, err)
	}
	if !body.Compacted {
		return fmt.Errorf("POST /compact reclaimed nothing on a churned database")
	}
	fmt.Printf("explicit compaction: %d tables, %d slots reclaimed, %d plans carried / %d dropped\n",
		body.Stats.TablesCompacted, body.Stats.SlotsReclaimed, body.Stats.PlansCarried, body.Stats.PlansDropped)
	for i, q := range queries {
		after, err := b.Quote(q)
		if err != nil {
			return fmt.Errorf("post-compaction quote %q: %w", q.Name, err)
		}
		if after.Price != before[i].Price || after.ConflictSize != before[i].ConflictSize ||
			after.Informative != before[i].Informative {
			return fmt.Errorf("quote %q changed across compaction: %+v -> %+v", q.Name, before[i], after)
		}
	}
	fmt.Printf("quote identity: %d queries price-identical across the epoch\n", len(queries))
	return nil
}

package main

import (
	"fmt"
	"strings"

	"querypricing/internal/lowerbounds"
	"querypricing/internal/pricing"
)

// lemmasReport measures the Lemma 2/3/4 gaps empirically: OPT of each
// construction against the best uniform bundle price and the best item
// pricings our algorithms find. The gaps must grow with the instance size
// (Theta(log m)).
func lemmasReport() string {
	var sb strings.Builder

	sb.WriteString("Lemma 2 (harmonic, additive valuations): UBP loses Omega(log m)\n")
	fmt.Fprintf(&sb, "%8s %12s %12s %12s %8s\n", "m", "OPT", "UBP", "LPIP", "OPT/UBP")
	for _, m := range []int{64, 256, 1024, 4096} {
		inst := lowerbounds.HarmonicAdditive(m)
		ubp := pricing.UniformBundle(inst.H)
		lpip, err := pricing.LPItem(inst.H, pricing.LPItemOptions{MaxCandidates: 8})
		if err != nil {
			fmt.Fprintf(&sb, "  error: %v\n", err)
			continue
		}
		fmt.Fprintf(&sb, "%8d %12.3f %12.3f %12.3f %8.2f\n",
			m, inst.Opt, ubp.Revenue, lpip.Revenue, inst.Opt/ubp.Revenue)
	}

	sb.WriteString("\nLemma 3 (partition, unit valuations): UBP extracts OPT\n")
	fmt.Fprintf(&sb, "%8s %12s %12s %12s\n", "n", "OPT", "UBP", "UIP")
	for _, n := range []int{16, 64, 256} {
		inst := lowerbounds.PartitionUniform(n)
		ubp := pricing.UniformBundle(inst.H)
		uip := pricing.UniformItem(inst.H)
		fmt.Fprintf(&sb, "%8d %12.3f %12.3f %12.3f\n", n, inst.Opt, ubp.Revenue, uip.Revenue)
	}

	sb.WriteString("\nLemma 4 (laminar, submodular valuations): both succinct families lose Omega(log m)\n")
	fmt.Fprintf(&sb, "%8s %8s %12s %12s %12s %10s\n", "depth", "m", "OPT", "UBP", "UIP", "OPT/best")
	for _, t := range []int{2, 3, 4, 5, 6} {
		inst := lowerbounds.LaminarSubmodular(t)
		ubp := pricing.UniformBundle(inst.H)
		uip := pricing.UniformItem(inst.H)
		best := ubp.Revenue
		if uip.Revenue > best {
			best = uip.Revenue
		}
		fmt.Fprintf(&sb, "%8d %8d %12.1f %12.1f %12.1f %10.2f\n",
			t, inst.H.NumEdges(), inst.Opt, ubp.Revenue, uip.Revenue, inst.Opt/best)
	}
	return sb.String()
}

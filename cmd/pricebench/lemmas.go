package main

import (
	"fmt"
	"strings"

	"querypricing/internal/engine"
	"querypricing/internal/hypergraph"
	"querypricing/internal/lowerbounds"
	"querypricing/internal/pricing"
)

// price runs a registry algorithm and reports its revenue, rendering any
// error into the report (the gap constructions never fail in practice).
func price(sb *strings.Builder, name string, h *hypergraph.Hypergraph, opts engine.Options) (pricing.Result, bool) {
	res, err := engine.Price(name, h, opts)
	if err != nil {
		fmt.Fprintf(sb, "  %s error: %v\n", name, err)
		return pricing.Result{}, false
	}
	return res, true
}

// lemmasReport measures the Lemma 2/3/4 gaps empirically: OPT of each
// construction against the best uniform bundle price and the best item
// pricings our algorithms find. The gaps must grow with the instance size
// (Theta(log m)).
func lemmasReport() string {
	var sb strings.Builder

	sb.WriteString("Lemma 2 (harmonic, additive valuations): UBP loses Omega(log m)\n")
	fmt.Fprintf(&sb, "%8s %12s %12s %12s %8s\n", "m", "OPT", "UBP", "LPIP", "OPT/UBP")
	for _, m := range []int{64, 256, 1024, 4096} {
		inst := lowerbounds.HarmonicAdditive(m)
		ubp, ok1 := price(&sb, "UBP", inst.H, engine.Options{})
		lpip, ok2 := price(&sb, "LPIP", inst.H, engine.Options{LPIPMaxCandidates: 8})
		if !ok1 || !ok2 {
			continue
		}
		fmt.Fprintf(&sb, "%8d %12.3f %12.3f %12.3f %8.2f\n",
			m, inst.Opt, ubp.Revenue, lpip.Revenue, inst.Opt/ubp.Revenue)
	}

	sb.WriteString("\nLemma 3 (partition, unit valuations): UBP extracts OPT\n")
	fmt.Fprintf(&sb, "%8s %12s %12s %12s\n", "n", "OPT", "UBP", "UIP")
	for _, n := range []int{16, 64, 256} {
		inst := lowerbounds.PartitionUniform(n)
		ubp, ok1 := price(&sb, "UBP", inst.H, engine.Options{})
		uip, ok2 := price(&sb, "UIP", inst.H, engine.Options{})
		if !ok1 || !ok2 {
			continue
		}
		fmt.Fprintf(&sb, "%8d %12.3f %12.3f %12.3f\n", n, inst.Opt, ubp.Revenue, uip.Revenue)
	}

	sb.WriteString("\nLemma 4 (laminar, submodular valuations): both succinct families lose Omega(log m)\n")
	fmt.Fprintf(&sb, "%8s %8s %12s %12s %12s %10s\n", "depth", "m", "OPT", "UBP", "UIP", "OPT/best")
	for _, t := range []int{2, 3, 4, 5, 6} {
		inst := lowerbounds.LaminarSubmodular(t)
		ubp, ok1 := price(&sb, "UBP", inst.H, engine.Options{})
		uip, ok2 := price(&sb, "UIP", inst.H, engine.Options{})
		if !ok1 || !ok2 {
			continue
		}
		best := ubp.Revenue
		if uip.Revenue > best {
			best = uip.Revenue
		}
		fmt.Fprintf(&sb, "%8d %8d %12.1f %12.1f %12.1f %10.2f\n",
			t, inst.H.NumEdges(), inst.Opt, ubp.Revenue, uip.Revenue, inst.Opt/best)
	}
	return sb.String()
}

// Command hypergen builds the pricing hypergraph of a query workload and
// prints its characteristics (the paper's Table 3) and hyperedge-size
// histogram (Figure 4), plus construction statistics showing the effect of
// conflict-set pruning.
//
// Usage:
//
//	hypergen -workload skewed
//	hypergen -workload all -support 2000 -scale 2
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"querypricing/internal/experiments"
	"querypricing/internal/support"
)

func main() {
	var (
		workload = flag.String("workload", "all", "skewed | uniform | tpch | ssb | all")
		scale    = flag.Float64("scale", 1, "dataset scale multiplier")
		supportN = flag.Int("support", 0, "support size (0 = workload default)")
		seed     = flag.Int64("seed", 1, "random seed")
		bins     = flag.Int("bins", 12, "histogram bins")
		ablation = flag.Bool("pruning-ablation", false, "also build without pruning and compare times")
	)
	flag.Parse()

	var ws []experiments.Workload
	if *workload == "all" {
		ws = experiments.AllWorkloads
	} else {
		ws = []experiments.Workload{experiments.Workload(*workload)}
	}

	var scs []*experiments.Scenario
	for _, w := range ws {
		sc, err := experiments.Build(experiments.Config{
			Workload: w, Scale: *scale, SupportSize: *supportN, Seed: *seed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "hypergen: %v\n", err)
			os.Exit(1)
		}
		scs = append(scs, sc)
		fmt.Println(experiments.FormatHistogram("Figure 4: "+string(w), sc.H, *bins))
		fmt.Printf("construction: %v (%d query evals; pruned %d by columns, %d by predicates)\n\n",
			sc.BuildTime.Round(time.Millisecond), sc.Stats.QueryEvals,
			sc.Stats.PrunedByCols, sc.Stats.PrunedByPred)

		if *ablation {
			start := time.Now()
			_, nstats, err := support.BuildHypergraph(sc.Set, sc.Queries, support.BuildOptions{DisablePruning: true})
			if err != nil {
				fmt.Fprintf(os.Stderr, "hypergen: naive build: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("pruning ablation: naive rebuild %v with %d evals (pruned build used %d)\n\n",
				time.Since(start).Round(time.Millisecond), nstats.QueryEvals, sc.Stats.QueryEvals)
		}
	}
	fmt.Println(experiments.FormatStatsTable(scs))
}

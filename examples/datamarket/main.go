// Datamarket: the full pipeline of the paper on the world dataset — the
// scenario the introduction motivates. A broker (Qirana's role) sells
// query access to a relational dataset:
//
//  1. generate the world database and the skewed query workload;
//  2. sample a support set of neighboring instances;
//  3. calibrate a revenue-maximizing, arbitrage-free pricing (LPIP);
//  4. simulate single-minded buyers (like Alice from Examples 1-3 of the
//     paper) quoting and purchasing queries under budgets.
//
// Run with:
//
//	go run ./examples/datamarket
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"

	"querypricing"
	"querypricing/internal/market"
	"querypricing/internal/relational"
)

func main() {
	fmt.Println("generating world dataset and skewed workload...")
	db := querypricing.WorldDatabase(querypricing.WorldConfig{Countries: 239, Cities: 500, Seed: 11})
	forecast := querypricing.SkewedWorkload(db)
	fmt.Printf("  %d tuples, %d forecast queries\n", db.TotalRows(), len(forecast))

	broker, err := querypricing.NewBroker(db, querypricing.BrokerConfig{
		SupportSize:    300,
		Seed:           12,
		LPIPCandidates: 12,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  support set: %d neighboring instances\n", broker.SupportSize())

	// Calibrate with buyer valuations from market research (Uniform[1,100]).
	rev, err := broker.Calibrate(forecast, querypricing.UniformValuation{K: 100}, querypricing.AlgoLPIP)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  calibrated LPIP pricing; forecast revenue %.1f\n\n", rev)

	// Alice from the paper: she wants demographic aggregates but cannot
	// afford the whole dataset.
	colRef := func(t, c string) relational.ColRef { return relational.ColRef{Table: t, Col: c} }
	aliceQueries := []*relational.SelectQuery{
		{Name: "female-count-by-gender-ish (count by continent)",
			Tables:  []string{"Country"},
			GroupBy: []relational.ColRef{colRef("Country", "Continent")},
			Aggs:    []relational.Agg{{Op: relational.AggCount}}},
		{Name: "average population",
			Tables: []string{"Country"},
			Aggs:   []relational.Agg{{Op: relational.AggAvg, Col: colRef("Country", "Population")}}},
		{Name: "full dump (the expensive one)",
			Tables: []string{"Country"}},
	}

	// Quote all of Alice's queries in one batch: the broker fans them
	// across its worker pool and memoizes each conflict set.
	quotes, err := broker.QuoteBatch(aliceQueries)
	if err != nil {
		log.Fatal(err)
	}
	for i, quote := range quotes {
		fmt.Printf("quote %-45s conflictset=%-4d price=%8.2f\n",
			aliceQueries[i].Name, quote.ConflictSize, quote.Price)
	}

	rng := rand.New(rand.NewSource(13))

	fmt.Println("\nsimulating 40 single-minded buyers with budgets...")
	bought, rejected := 0, 0
	for i := 0; i < 40; i++ {
		q := forecast[rng.Intn(len(forecast))]
		budget := 1 + rng.Float64()*60
		_, receipt, err := broker.Purchase(q, budget)
		switch {
		case errors.Is(err, market.ErrBudget):
			rejected++
		case err != nil:
			log.Fatal(err)
		default:
			bought++
			_ = receipt
		}
	}
	fmt.Printf("  %d purchases, %d rejected on budget\n", bought, rejected)
	fmt.Printf("  broker revenue: %.2f across %d sales\n", broker.Revenue(), len(broker.Sales()))

	// Arbitrage check, live: combining two queries never beats buying the
	// combined query (combination arbitrage), and a less informative query
	// never costs more (information arbitrage).
	narrow := &relational.SelectQuery{Name: "narrow", Tables: []string{"Country"},
		Select: []relational.ColRef{colRef("Country", "Name")}}
	wide := &relational.SelectQuery{Name: "wide", Tables: []string{"Country"},
		Select: []relational.ColRef{colRef("Country", "Name"), colRef("Country", "GNP")}}
	qn, err := broker.Quote(narrow)
	if err != nil {
		log.Fatal(err)
	}
	qw, err := broker.Quote(wide)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\narbitrage check: price(narrow)=%.2f <= price(wide)=%.2f : %v\n",
		qn.Price, qw.Price, qn.Price <= qw.Price+1e-9)
}

// Supporttuning: explore the support-size trade-off of Section 6.5 — a
// larger support set S gives item pricings finer price granularity (more
// revenue) but costs more to build and to price against (Figure 8, Tables
// 5 and 6). Uniform bundle pricing is flat: it ignores the items entirely.
//
// Run with:
//
//	go run ./examples/supporttuning
package main

import (
	"fmt"
	"log"
	"time"

	"querypricing"
)

func main() {
	db := querypricing.WorldDatabase(querypricing.WorldConfig{Countries: 239, Cities: 400, Seed: 21})
	queries := querypricing.SkewedWorkload(db)
	fmt.Printf("world dataset: %d tuples; %d queries\n\n", db.TotalRows(), len(queries))
	fmt.Printf("%8s %12s %10s %10s %10s %10s %12s\n",
		"|S|", "build", "UBP", "UIP", "LPIP", "Layering", "LPIP time")

	for _, n := range []int{50, 150, 400, 800} {
		start := time.Now()
		set, err := querypricing.GenerateSupport(db, querypricing.SupportOptions{Size: n, Seed: 22})
		if err != nil {
			log.Fatal(err)
		}
		h, _, err := querypricing.BuildQueryHypergraph(set, queries, querypricing.BuildOptions{})
		if err != nil {
			log.Fatal(err)
		}
		buildTime := time.Since(start)

		querypricing.ApplyValuations(h, querypricing.UniformValuation{K: 100}, 23)
		sum := querypricing.SumValuations(h)

		// The roster comes from the engine registry; one options struct
		// covers every algorithm's knobs.
		opts := querypricing.AlgorithmOptions{LPIPMaxCandidates: 10}
		norm := map[string]float64{}
		var lpipTime time.Duration
		for _, name := range []string{"UBP", "UIP", "LPIP", "Layering"} {
			res, err := querypricing.Price(name, h, opts)
			if err != nil {
				log.Fatal(err)
			}
			norm[name] = res.Revenue / sum
			if name == "LPIP" {
				lpipTime = res.Runtime
			}
		}

		fmt.Printf("%8d %12s %10.3f %10.3f %10.3f %10.3f %12s\n",
			n, buildTime.Round(time.Millisecond),
			norm["UBP"], norm["UIP"], norm["LPIP"], norm["Layering"],
			lpipTime.Round(time.Millisecond))
	}

	fmt.Println("\nTakeaways (matching Section 6.5):")
	fmt.Println(" - UBP is insensitive to |S|: it never looks at the items.")
	fmt.Println(" - Item pricings gain revenue as |S| grows (finer price granularity),")
	fmt.Println("   but construction and LP time grow with it — the broker picks the")
	fmt.Println("   trade-off that matches their latency budget.")
}

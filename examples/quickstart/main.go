// Quickstart: build a small pricing hypergraph by hand and run every
// pricing algorithm from the paper on it — selected by name from the
// engine registry, the way the broker and the CLIs do.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"querypricing"
)

func main() {
	// Five buyers over a support of four items (database instances).
	// Items can be thought of as "secrets" a query might reveal; each
	// buyer's bundle is the set of secrets their query would disclose.
	h := querypricing.NewHypergraph(4)
	must(h.AddEdge([]int{0}, 8, "point lookup"))
	must(h.AddEdge([]int{0, 1}, 12, "small range scan"))
	must(h.AddEdge([]int{1, 2}, 9, "aggregate"))
	must(h.AddEdge([]int{2, 3}, 7, "join"))
	must(h.AddEdge([]int{0, 1, 2, 3}, 20, "full dump"))

	fmt.Println("instance:", h)
	fmt.Printf("sum of valuations (upper bound): %.1f\n", querypricing.SumValuations(h))
	fmt.Printf("registered algorithms: %v\n\n", querypricing.ListAlgorithms())

	// One options struct drives the whole roster; every algorithm reads
	// only the knobs it understands.
	opts := querypricing.AlgorithmOptions{CIPEpsilon: 0.5}
	var lpip querypricing.Result
	for _, name := range querypricing.ListAlgorithms() {
		res, err := querypricing.Price(name, h, opts)
		if err != nil {
			log.Fatal(err)
		}
		switch {
		case res.BundlePrice > 0:
			fmt.Printf("%-10s revenue %6.2f  (flat price %.2f)\n", res.Algorithm, res.Revenue, res.BundlePrice)
		case res.WeightSets != nil:
			fmt.Printf("%-10s revenue %6.2f  (%s)\n", res.Algorithm, res.Revenue, res.Extra)
		default:
			fmt.Printf("%-10s revenue %6.2f  (weights %v, %d LPs)\n",
				res.Algorithm, res.Revenue, round2(res.Weights), res.LPSolves)
		}
		if res.Algorithm == "LPIP" {
			lpip = res
		}
	}

	bound, err := querypricing.SubadditiveBound(h, querypricing.BoundOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsubadditive LP bound: %.2f\n", bound)

	// Every one of these pricings is arbitrage-free by Theorem 1: item
	// pricings are additive (monotone + subadditive), the flat price is
	// constant, and XOS is a max of additive functions.
	fmt.Println("\nprices quoted to each buyer under LPIP:")
	for i := 0; i < h.NumEdges(); i++ {
		e := h.Edge(i)
		fmt.Printf("  %-16s valuation %5.1f  price %6.2f  sold=%v\n",
			e.Label, e.Valuation, lpip.Price(e), lpip.Price(e) <= e.Valuation+1e-9)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func round2(w []float64) []float64 {
	out := make([]float64, len(w))
	for i, x := range w {
		out[i] = float64(int(x*100+0.5)) / 100
	}
	return out
}

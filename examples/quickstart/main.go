// Quickstart: build a small pricing hypergraph by hand and run every
// pricing algorithm from the paper on it.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"querypricing"
)

func main() {
	// Five buyers over a support of four items (database instances).
	// Items can be thought of as "secrets" a query might reveal; each
	// buyer's bundle is the set of secrets their query would disclose.
	h := querypricing.NewHypergraph(4)
	must(h.AddEdge([]int{0}, 8, "point lookup"))
	must(h.AddEdge([]int{0, 1}, 12, "small range scan"))
	must(h.AddEdge([]int{1, 2}, 9, "aggregate"))
	must(h.AddEdge([]int{2, 3}, 7, "join"))
	must(h.AddEdge([]int{0, 1, 2, 3}, 20, "full dump"))

	fmt.Println("instance:", h)
	fmt.Printf("sum of valuations (upper bound): %.1f\n\n", querypricing.SumValuations(h))

	ubp := querypricing.UniformBundlePricing(h)
	fmt.Printf("%-10s revenue %6.2f  (flat price %.2f)\n", ubp.Algorithm, ubp.Revenue, ubp.BundlePrice)

	uip := querypricing.UniformItemPricing(h)
	fmt.Printf("%-10s revenue %6.2f  (uniform weight %.2f)\n", uip.Algorithm, uip.Revenue, uip.Weights[0])

	lpip, err := querypricing.LPItemPricing(h, querypricing.LPItemOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s revenue %6.2f  (weights %v, %d LPs)\n", lpip.Algorithm, lpip.Revenue, round2(lpip.Weights), lpip.LPSolves)

	cip, err := querypricing.CapacityPricing(h, querypricing.CapacityOptions{Epsilon: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s revenue %6.2f  (weights %v, %s)\n", cip.Algorithm, cip.Revenue, round2(cip.Weights), cip.Extra)

	lay := querypricing.LayeringPricing(h)
	fmt.Printf("%-10s revenue %6.2f  (weights %v)\n", lay.Algorithm, lay.Revenue, round2(lay.Weights))

	xos := querypricing.XOSPricing(h, lpip.Weights, cip.Weights)
	fmt.Printf("%-10s revenue %6.2f  (max of LPIP and CIP prices)\n", xos.Algorithm, xos.Revenue)

	bound, err := querypricing.SubadditiveBound(h, querypricing.BoundOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsubadditive LP bound: %.2f\n", bound)

	// Every one of these pricings is arbitrage-free by Theorem 1: item
	// pricings are additive (monotone + subadditive), the flat price is
	// constant, and XOS is a max of additive functions.
	fmt.Println("\nprices quoted to each buyer under LPIP:")
	for i := 0; i < h.NumEdges(); i++ {
		e := h.Edge(i)
		fmt.Printf("  %-16s valuation %5.1f  price %6.2f  sold=%v\n",
			e.Label, e.Valuation, lpip.Price(e), lpip.Price(e) <= e.Valuation+1e-9)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func round2(w []float64) []float64 {
	out := make([]float64, len(w))
	for i, x := range w {
		out[i] = float64(int(x*100+0.5)) / 100
	}
	return out
}

// Lowerbounds: reproduce the worst-case constructions of Appendix A
// (Lemmas 2, 3 and 4) empirically, showing when each succinct pricing
// family breaks down — the theory behind Figure 3's separation diagram.
//
// Run with:
//
//	go run ./examples/lowerbounds
package main

import (
	"fmt"
	"log"
	"math"

	"querypricing"
)

func main() {
	fmt.Println("Lemma 2 — additive valuations (harmonic instance).")
	fmt.Println("Item pricing extracts OPT = H_m; any flat bundle price earns <= 1.")
	fmt.Printf("%8s %10s %10s %10s %12s\n", "m", "OPT", "UBP", "LPIP", "gap(=OPT/UBP)")
	for _, m := range []int{100, 400, 1600} {
		inst := querypricing.HarmonicGapInstance(m)
		ubp := price("UBP", inst.H, querypricing.AlgorithmOptions{})
		// LPIP's forced-sale LP here has one constraint per bundle, so keep
		// m moderate: the dense simplex basis grows quadratically with m.
		lpip := price("LPIP", inst.H, querypricing.AlgorithmOptions{LPIPMaxCandidates: 3})
		fmt.Printf("%8d %10.2f %10.2f %10.2f %12.2f   (log m = %.2f)\n",
			m, inst.Opt, ubp.Revenue, lpip.Revenue, inst.Opt/ubp.Revenue, math.Log(float64(m)))
	}

	fmt.Println("\nLemma 3 — unit valuations (partition instance).")
	fmt.Println("A flat price of 1 extracts OPT; uniform item pricing collapses.")
	fmt.Printf("%8s %10s %10s %10s\n", "n", "OPT", "UBP", "UIP")
	for _, n := range []int{32, 128, 512} {
		inst := querypricing.PartitionGapInstance(n)
		ubp := price("UBP", inst.H, querypricing.AlgorithmOptions{})
		uip := price("UIP", inst.H, querypricing.AlgorithmOptions{})
		fmt.Printf("%8d %10.1f %10.1f %10.1f\n", n, inst.Opt, ubp.Revenue, uip.Revenue)
	}

	fmt.Println("\nLemma 4 — submodular valuations (laminar binary-tree family, Figure 9).")
	fmt.Println("Both families are stuck at O(3^t) while OPT = (t+1)3^t.")
	fmt.Printf("%6s %8s %12s %12s %12s %10s\n", "t", "m", "OPT", "UBP", "UIP", "gap")
	for _, t := range []int{3, 4, 5, 6, 7} {
		inst := querypricing.LaminarGapInstance(t)
		ubp := price("UBP", inst.H, querypricing.AlgorithmOptions{})
		uip := price("UIP", inst.H, querypricing.AlgorithmOptions{})
		best := math.Max(ubp.Revenue, uip.Revenue)
		fmt.Printf("%6d %8d %12.0f %12.1f %12.1f %10.2f\n",
			t, inst.H.NumEdges(), inst.Opt, ubp.Revenue, uip.Revenue, inst.Opt/best)
	}
	fmt.Println("\nThe gap column grows linearly in t = Theta(log m): no constant-size")
	fmt.Println("XOS combination of these families can close it (Section 4).")
}

// price runs a registry algorithm, exiting on error (the gap constructions
// never fail in practice).
func price(name string, h *querypricing.Hypergraph, opts querypricing.AlgorithmOptions) querypricing.Result {
	res, err := querypricing.Price(name, h, opts)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

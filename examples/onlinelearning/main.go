// Onlinelearning: the paper's "Learning buyer valuations" future work
// (Section 7.2) in action. Buyers with fixed but hidden valuations arrive
// one at a time; the seller posts a price and observes only buy/no-buy.
// Three learners compete: UCB and EXP3 over flat bundle prices, and a
// multiplicative per-item weight learner (the online analogue of item
// pricing, arbitrage-free at every round).
//
// Run with:
//
//	go run ./examples/onlinelearning
package main

import (
	"fmt"
	"log"

	"querypricing"
)

func main() {
	// A marketplace instance: the skewed workload over the world dataset.
	db := querypricing.WorldDatabase(querypricing.WorldConfig{Countries: 120, Cities: 300, Seed: 31})
	queries := querypricing.SkewedWorkload(db)[:400]
	set, err := querypricing.GenerateSupport(db, querypricing.SupportOptions{Size: 200, Seed: 32})
	if err != nil {
		log.Fatal(err)
	}
	h, _, err := querypricing.BuildQueryHypergraph(set, queries, querypricing.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	// Two valuation regimes, showing where each learner class shines:
	// size-independent flat values (bundle learners win) and the additive
	// per-item model of Figure 7 (the item learner has the right bias).
	const rounds = 15000
	fmt.Printf("%d queries, %d support items, %d rounds of anonymous buyers\n",
		h.NumEdges(), h.NumItems(), rounds)

	for _, regime := range []struct {
		name  string
		model querypricing.ValuationModel
	}{
		{"uniform[1,100] (size-independent)", querypricing.UniformValuation{K: 100}},
		{"additive item model (Figure 7)", querypricing.AdditiveValuation{K: 100, Dist: querypricing.IndexUniform}},
	} {
		querypricing.ApplyValuations(h, regime.model, 33)
		fmt.Printf("\n-- valuations: %s --\n", regime.name)
		grid := querypricing.OnlinePriceGrid(1, 120, 14)
		learners := []querypricing.OnlinePricer{
			querypricing.NewUCBBundleLearner(grid),
			querypricing.NewEXP3BundleLearner(grid, 0.1, 34),
			querypricing.NewItemPriceLearner(h.NumItems(), 1, 0.1),
		}
		fmt.Printf("%-16s %12s %8s %10s   %s\n", "learner", "revenue", "sales", "vs-fixed", "revenue per quarter")
		for _, l := range learners {
			res := querypricing.SimulateOnlinePricing(h, l, rounds, 35)
			fmt.Printf("%-16s %12.1f %8d %10.3f   %v\n",
				res.Learner, res.Revenue, res.Sales, res.Ratio(), quarters(res))
		}
	}

	fmt.Println("\nvs-fixed compares against the best fixed flat price in hindsight.")
	fmt.Println("Flat-price learners are robust when value is unrelated to bundle")
	fmt.Println("structure; the item learner wins when value is additive over items")
	fmt.Println("(it can exceed 1.0 there — item pricing is a richer class, Lemma 2).")
	fmt.Println("Offline LPIP on the same instance (full information) for reference:")
	lpip, err := querypricing.Price("LPIP", h, querypricing.AlgorithmOptions{LPIPMaxCandidates: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  LPIP one-shot revenue over the workload: %.1f (of %.1f total value)\n",
		lpip.Revenue, querypricing.SumValuations(h))
}

func quarters(r querypricing.OnlineSimResult) [4]int {
	var out [4]int
	for i, v := range r.CumulativeByQuarter {
		out[i] = int(v)
	}
	return out
}

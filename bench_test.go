package querypricing

// Benchmark harness: one benchmark (or sub-benchmark group) per table and
// figure of the paper (see docs/ARCHITECTURE.md's package map). Scales are laptop-small so
// `go test -bench=.` completes in minutes; cmd/pricebench regenerates the
// full series with configurable scale; BENCH_<n>.json records the tracked
// perf trajectory per PR (scripts/bench.sh).

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"querypricing/internal/bounds"
	"querypricing/internal/experiments"
	"querypricing/internal/lowerbounds"
	"querypricing/internal/lp"
	"querypricing/internal/pricing"
	"querypricing/internal/support"
	"querypricing/internal/valuation"
)

// scenarioCache builds each workload scenario once per bench run.
var (
	scenarioMu    sync.Mutex
	scenarioCache = map[experiments.Workload]*experiments.Scenario{}
)

func benchScenario(b *testing.B, w experiments.Workload) *experiments.Scenario {
	b.Helper()
	scenarioMu.Lock()
	defer scenarioMu.Unlock()
	if sc, ok := scenarioCache[w]; ok {
		return sc
	}
	cfg := experiments.Config{Workload: w, Scale: 0.25, SupportSize: 150, Seed: 1}
	if w == experiments.Uniform {
		cfg.UniformQueries = 200
	}
	sc, err := experiments.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	scenarioCache[w] = sc
	return sc
}

func benchTuning() experiments.Tuning {
	return experiments.Tuning{LPIPCandidates: 6, CIPEpsilon: 1, CIPMaxCaps: 4, WithBound: false}
}

// ---- Figure 4 / Table 3: hypergraph construction ----

// BenchmarkFig4Construction measures hypergraph construction per workload
// across four engine configurations: "serial" is the pre-incremental
// baseline (one worker, full re-evaluation of every pair surviving the
// pruning rules), "parallel" adds only the worker pool, "incremental" is
// the full single-shard engine (worker pool + delta probing over the
// compiled plan cache), and "sharded" partitions the support set across
// GOMAXPROCS shards so the builder schedules shard × query tiles. Every
// iteration samples a fresh support set so the plan caches start cold and
// compile time is charged to the run.
func BenchmarkFig4Construction(b *testing.B) {
	variants := []struct {
		name   string
		shards int
		opts   support.BuildOptions
	}{
		{"serial", 0, support.BuildOptions{Workers: 1, DisableIncremental: true}},
		{"parallel", 0, support.BuildOptions{DisableIncremental: true}},
		{"incremental", 0, support.BuildOptions{}},
		{"sharded", runtime.GOMAXPROCS(0), support.BuildOptions{}},
	}
	for _, w := range experiments.AllWorkloads {
		sc := benchScenario(b, w) // datasets and queries prebuilt
		for _, v := range variants {
			b.Run(string(w)+"/"+v.name, func(b *testing.B) {
				b.ReportAllocs()
				runtime.GC() // don't charge this variant the previous one's heap
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					set, err := support.Generate(sc.DB, support.GenOptions{Size: 100, Seed: int64(i), Shards: v.shards})
					if err != nil {
						b.Fatal(err)
					}
					if _, _, err := support.BuildHypergraph(set, sc.Queries, v.opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkPruningAblation compares pruned vs naive conflict-set
// construction (the pruning ablation).
func BenchmarkPruningAblation(b *testing.B) {
	sc := benchScenario(b, experiments.Skewed)
	set, err := support.Generate(sc.DB, support.GenOptions{Size: 100, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	qs := sc.Queries[:200]
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"pruned", false}, {"naive", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := support.BuildHypergraph(set, qs, support.BuildOptions{DisablePruning: mode.disable}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Figures 5a/5b/6a/6b/7: revenue sweeps ----

func benchSweep(b *testing.B, w experiments.Workload, models []valuation.Model) {
	sc := benchScenario(b, w)
	tune := benchTuning()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Sweep(sc.H, models, int64(i), tune); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5aSampledValuations(b *testing.B) {
	models := []valuation.Model{valuation.Uniform{K: 100}, valuation.Zipf{A: 2}}
	for _, w := range []experiments.Workload{experiments.Skewed, experiments.Uniform} {
		b.Run(string(w), func(b *testing.B) { benchSweep(b, w, models) })
	}
}

func BenchmarkFig5bScaledValuations(b *testing.B) {
	models := []valuation.Model{valuation.ExponentialScaled{K: 1}, valuation.NormalScaled{K: 1}}
	for _, w := range []experiments.Workload{experiments.Skewed, experiments.Uniform} {
		b.Run(string(w), func(b *testing.B) { benchSweep(b, w, models) })
	}
}

func BenchmarkFig6aSampledValuations(b *testing.B) {
	models := []valuation.Model{valuation.Uniform{K: 100}, valuation.Zipf{A: 2}}
	for _, w := range []experiments.Workload{experiments.SSB, experiments.TPCH} {
		b.Run(string(w), func(b *testing.B) { benchSweep(b, w, models) })
	}
}

func BenchmarkFig6bScaledValuations(b *testing.B) {
	models := []valuation.Model{valuation.ExponentialScaled{K: 1}, valuation.NormalScaled{K: 1}}
	for _, w := range []experiments.Workload{experiments.SSB, experiments.TPCH} {
		b.Run(string(w), func(b *testing.B) { benchSweep(b, w, models) })
	}
}

func BenchmarkFig7AdditiveValuations(b *testing.B) {
	models := []valuation.Model{
		valuation.Additive{K: 100, Dist: valuation.IndexUniform},
		valuation.Additive{K: 100, Dist: valuation.IndexBinomial},
	}
	for _, w := range experiments.AllWorkloads {
		b.Run(string(w), func(b *testing.B) { benchSweep(b, w, models) })
	}
}

// ---- Figure 8 / Tables 5-6: support-size sweeps ----

func BenchmarkFig8SupportSweep(b *testing.B) {
	for _, w := range []experiments.Workload{experiments.Skewed, experiments.SSB} {
		sc := benchScenario(b, w)
		b.Run(string(w), func(b *testing.B) {
			tune := benchTuning()
			tune.SkipCIP = true
			for i := 0; i < b.N; i++ {
				if _, err := experiments.SupportSweep(sc, []int{30, 75, 150}, valuation.Uniform{K: 100}, 3, tune); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Table 4: per-algorithm runtimes ----

func BenchmarkTab4Algorithms(b *testing.B) {
	for _, w := range experiments.AllWorkloads {
		sc := benchScenario(b, w)
		valuation.Apply(sc.H, valuation.Uniform{K: 100}, 5)
		b.Run(string(w)+"/UBP", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pricing.UniformBundle(sc.H)
			}
		})
		b.Run(string(w)+"/UIP", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pricing.UniformItem(sc.H)
			}
		})
		b.Run(string(w)+"/Layering", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pricing.Layering(sc.H)
			}
		})
		b.Run(string(w)+"/LPIP", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := pricing.LPItem(sc.H, pricing.LPItemOptions{MaxCandidates: 6}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(string(w)+"/CIP", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := pricing.Capacity(sc.H, pricing.CapacityOptions{Epsilon: 1, MaxCapacities: 4}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Subadditive bound (Section 6.1) ----

func BenchmarkSubadditiveBound(b *testing.B) {
	sc := benchScenario(b, experiments.Skewed)
	valuation.Apply(sc.H, valuation.Uniform{K: 100}, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bounds.Subadditive(sc.H, bounds.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Lemmas 2-4 gap constructions ----

func BenchmarkLowerBoundConstructions(b *testing.B) {
	b.Run("lemma2-harmonic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			inst := lowerbounds.HarmonicAdditive(1000)
			pricing.UniformBundle(inst.H)
		}
	})
	b.Run("lemma3-partition", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			inst := lowerbounds.PartitionUniform(128)
			pricing.UniformItem(inst.H)
		}
	})
	b.Run("lemma4-laminar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			inst := lowerbounds.LaminarSubmodular(5)
			pricing.UniformBundle(inst.H)
			pricing.UniformItem(inst.H)
		}
	})
}

// ---- LP solver micro-benchmarks ----

func BenchmarkSimplex(b *testing.B) {
	for _, size := range []struct{ n, m int }{{50, 20}, {200, 80}, {500, 150}} {
		b.Run(fmt.Sprintf("n%d_m%d", size.n, size.m), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := lp.NewProblem(lp.Maximize)
				for j := 0; j < size.n; j++ {
					p.AddVariable(1+float64(j%7), 0, 10)
				}
				for r := 0; r < size.m; r++ {
					var idx []int
					var coef []float64
					for j := r % 3; j < size.n; j += 5 {
						idx = append(idx, j)
						coef = append(coef, 1+float64((r+j)%3))
					}
					p.MustAddConstraint(idx, coef, lp.LE, float64(10+r%20))
				}
				sol, err := p.Solve()
				if err != nil {
					b.Fatal(err)
				}
				if sol.Status != lp.Optimal {
					b.Fatalf("status %v", sol.Status)
				}
			}
		})
	}
}

// ---- Conflict-set single-query path (broker quote latency) ----

// BenchmarkConflictSet measures the online quote path. "cold" pays plan
// compilation (base evaluation) on every iteration by discarding the plan
// cache; "warm" reuses the set's cache, the steady state of a broker
// serving repeat quote traffic. "warm10k" and "sharded" grow the support
// set to |S| = 10000 — toward the paper's 100k scale — quoting a
// selective query (W14, a predicated single-table projection, the typical
// online shape) against one shard and against GOMAXPROCS shards: the
// per-shard inverted footprint indexes cut the scan to the candidate
// neighbors and the sharded variant fans those probes out concurrently.
func BenchmarkConflictSet(b *testing.B) {
	sc := benchScenario(b, experiments.Skewed)
	q := sc.Queries[9] // W10: SELECT * FROM Country
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		runtime.GC()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fresh := &support.Set{DB: sc.Set.DB, Neighbors: sc.Set.Neighbors}
			if _, err := support.ConflictSet(fresh, q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		b.ReportAllocs()
		if _, err := support.ConflictSet(sc.Set, q); err != nil {
			b.Fatal(err) // prime the plan cache
		}
		runtime.GC()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := support.ConflictSet(sc.Set, q); err != nil {
				b.Fatal(err)
			}
		}
	})
	qsel := sc.Queries[13] // W14: SELECT Name FROM Country WHERE Region = 'Caribbean'
	for _, v := range []struct {
		name   string
		shards int
	}{{"warm10k", 1}, {"sharded", runtime.GOMAXPROCS(0)}} {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			set, err := support.Generate(sc.DB, support.GenOptions{Size: 10000, Seed: 3, Shards: v.shards})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := support.ConflictSet(set, qsel); err != nil {
				b.Fatal(err) // prime the plan cache and shard indexes
			}
			runtime.GC()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := support.ConflictSet(set, qsel); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Live updates: update latency and post-update requote ----

// BenchmarkUpdateRequote tracks the live-update path (docs/UPDATES.md).
// "update1" and "update16" measure Broker.Update end to end — Apply,
// IndexPool.Advance, and the rebase of every cached plan (the broker is
// calibrated from the full skewed workload first, so ~1000 plans are live)
// — for 1- and 16-cell batches. "requote" measures a warm single-query
// quote against a broker that just absorbed an update: delta-maintained
// plans must keep the warm path warm, so this should track the plain warm
// ConflictSet numbers. The conflict cache is disabled throughout so every
// quote pays real conflict-set computation.
func BenchmarkUpdateRequote(b *testing.B) {
	sc := benchScenario(b, experiments.Skewed)
	newBroker := func() *Broker {
		set, err := GenerateSupport(sc.DB, SupportOptions{Size: 100, Seed: 2})
		if err != nil {
			b.Fatal(err)
		}
		broker, err := NewBrokerWithSupport(sc.DB, set, BrokerConfig{
			Seed:              2,
			LPIPCandidates:    6,
			ConflictCacheSize: -1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := broker.Calibrate(sc.Queries, UniformValuation{K: 100}, AlgoUIP); err != nil {
			b.Fatal(err) // compiles (and caches) every workload plan
		}
		return broker
	}
	// Two values from Country.Population's domain to alternate between.
	domain := sc.DB.ActiveDomain("Country", "Population")
	if len(domain) < 2 {
		b.Fatal("degenerate Population domain")
	}
	change := func(i int) []CellChange {
		return []CellChange{{Table: "Country", Row: 5, Col: 6, New: domain[i%2]}}
	}
	batch16 := func(i int) []CellChange {
		var out []CellChange
		for r := 0; r < 16; r++ {
			out = append(out, CellChange{Table: "Country", Row: r, Col: 6, New: domain[(i+r)%2]})
		}
		return out
	}

	b.Run("update1", func(b *testing.B) {
		broker := newBroker()
		b.ReportAllocs()
		runtime.GC()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := broker.Update(change(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("update16", func(b *testing.B) {
		broker := newBroker()
		b.ReportAllocs()
		runtime.GC()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := broker.Update(batch16(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("requote", func(b *testing.B) {
		broker := newBroker()
		q := sc.Queries[13] // W14: selective single-table projection
		if _, _, err := broker.Update(change(0)); err != nil {
			b.Fatal(err)
		}
		if _, err := broker.Quote(q); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		runtime.GC()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := broker.Quote(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- Batch quoting: serial loop vs the broker's worker pool ----

// BenchmarkQuoteBatch is the perf baseline for the concurrent quote
// pipeline: the same query batch priced by a serial Quote loop and by
// QuoteBatch over the bounded worker pool. Conflict-set caching is disabled
// so every quote pays full conflict-set computation — the work the pool is
// meant to parallelize.
func BenchmarkQuoteBatch(b *testing.B) {
	sc := benchScenario(b, experiments.Skewed)
	broker, err := NewBroker(sc.DB, BrokerConfig{
		SupportSize:       100,
		Seed:              2,
		LPIPCandidates:    6,
		ConflictCacheSize: -1, // measure computation, not cache hits
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := broker.Calibrate(sc.Queries[:25], UniformValuation{K: 100}, AlgoUIP); err != nil {
		b.Fatal(err)
	}
	batch := sc.Queries[:32]

	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range batch {
				if _, err := broker.Quote(q); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("pooled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := broker.QuoteBatch(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Command docscheck enforces the repository's documentation contract:
//
//  1. every exported identifier in the audited packages carries a doc
//     comment, so `go doc` output reads as a specification;
//  2. every intra-repository markdown link resolves to a file that
//     exists.
//
// CI runs it on every push (the docs job); run it locally with:
//
//	go run ./scripts/docscheck
//
// Exit status is non-zero when any check fails, with one line per
// violation.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// auditedPackages are the directories whose exported identifiers must all
// be documented (the packages the incremental and sharded engines live
// in; extend as further packages are brought up to spec).
var auditedPackages = []string{
	"internal/plan",
	"internal/support",
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var problems []string
	for _, pkg := range auditedPackages {
		p, err := checkDocComments(filepath.Join(root, pkg))
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
			os.Exit(2)
		}
		problems = append(problems, p...)
	}
	p, err := checkMarkdownLinks(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
		os.Exit(2)
	}
	problems = append(problems, p...)

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Println(p)
		}
		fmt.Printf("docscheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docscheck: ok")
}

// checkDocComments reports every exported declaration in dir (tests
// excluded) that lacks a doc comment.
func checkDocComments(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || !exportedReceiver(d) {
						continue
					}
					if d.Doc == nil {
						kind := "function"
						if d.Recv != nil {
							kind = "method"
						}
						report(d.Pos(), kind, d.Name.Name)
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
								report(s.Pos(), "type", s.Name.Name)
							}
						case *ast.ValueSpec:
							for _, n := range s.Names {
								if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
									report(n.Pos(), strings.ToLower(d.Tok.String()), n.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	return out, nil
}

// exportedReceiver reports whether a function is package-level or a method
// on an exported type (methods on unexported types need no doc).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch v := t.(type) {
		case *ast.StarExpr:
			t = v.X
		case *ast.IndexExpr: // generic receiver
			t = v.X
		case *ast.Ident:
			return v.IsExported()
		default:
			return true
		}
	}
}

var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// checkMarkdownLinks reports intra-repository markdown links whose target
// files do not exist. External links (http, https, mailto) and pure
// anchors are skipped; anchored file links are checked for the file part.
func checkMarkdownLinks(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || (name != "." && strings.HasPrefix(name, ".") && path != root) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
					continue
				}
				if idx := strings.IndexByte(target, '#'); idx >= 0 {
					target = target[:idx]
				}
				if target == "" {
					continue
				}
				resolved := filepath.Join(filepath.Dir(path), target)
				if _, err := os.Stat(resolved); err != nil {
					out = append(out, fmt.Sprintf("%s:%d: broken link %q", path, i+1, m[1]))
				}
			}
		}
		return nil
	})
	return out, err
}

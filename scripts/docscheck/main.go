// Command docscheck enforces the repository's documentation contract:
//
//  1. every exported identifier in the audited packages carries a doc
//     comment, so `go doc` output reads as a specification;
//  2. every intra-repository markdown link resolves to a file that
//     exists;
//  3. every file under docs/ is reachable from README.md by following
//     intra-repository markdown links (no orphaned documentation);
//  4. every fenced `go` code block in README.md and docs/*.md parses and
//     is gofmt-clean, so documentation snippets stay compilable prose.
//
// CI runs it on every push (the docs job); run it locally with:
//
//	go run ./scripts/docscheck
//
// Exit status is non-zero when any check fails, with one line per
// violation.
package main

import (
	"fmt"
	"go/ast"
	"go/format"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// auditedPackages are the directories whose exported identifiers must all
// be documented (the packages the incremental and sharded engines live
// in; extend as further packages are brought up to spec).
var auditedPackages = []string{
	"internal/loadgen",
	"internal/metrics",
	"internal/plan",
	"internal/serve",
	"internal/store",
	"internal/support",
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var problems []string
	for _, pkg := range auditedPackages {
		p, err := checkDocComments(filepath.Join(root, pkg))
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
			os.Exit(2)
		}
		problems = append(problems, p...)
	}
	for _, check := range []func(string) ([]string, error){
		checkMarkdownLinks,
		checkDocsReachable,
		checkGoBlocks,
	} {
		p, err := check(root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
			os.Exit(2)
		}
		problems = append(problems, p...)
	}

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Println(p)
		}
		fmt.Printf("docscheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docscheck: ok")
}

// checkDocComments reports every exported declaration in dir (tests
// excluded) that lacks a doc comment.
func checkDocComments(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || !exportedReceiver(d) {
						continue
					}
					if d.Doc == nil {
						kind := "function"
						if d.Recv != nil {
							kind = "method"
						}
						report(d.Pos(), kind, d.Name.Name)
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
								report(s.Pos(), "type", s.Name.Name)
							}
						case *ast.ValueSpec:
							for _, n := range s.Names {
								if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
									report(n.Pos(), strings.ToLower(d.Tok.String()), n.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	return out, nil
}

// exportedReceiver reports whether a function is package-level or a method
// on an exported type (methods on unexported types need no doc).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch v := t.(type) {
		case *ast.StarExpr:
			t = v.X
		case *ast.IndexExpr: // generic receiver
			t = v.X
		case *ast.Ident:
			return v.IsExported()
		default:
			return true
		}
	}
}

var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// checkMarkdownLinks reports intra-repository markdown links whose target
// files do not exist. External links (http, https, mailto) and pure
// anchors are skipped; anchored file links are checked for the file part.
func checkMarkdownLinks(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || (name != "." && strings.HasPrefix(name, ".") && path != root) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
					continue
				}
				if idx := strings.IndexByte(target, '#'); idx >= 0 {
					target = target[:idx]
				}
				if target == "" {
					continue
				}
				resolved := filepath.Join(filepath.Dir(path), target)
				if _, err := os.Stat(resolved); err != nil {
					out = append(out, fmt.Sprintf("%s:%d: broken link %q", path, i+1, m[1]))
				}
			}
		}
		return nil
	})
	return out, err
}

// mdLinkTargets extracts the intra-repository markdown link targets of one
// file, resolved relative to it (external links and pure anchors skipped).
func mdLinkTargets(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
		target := m[1]
		if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
			continue
		}
		if idx := strings.IndexByte(target, '#'); idx >= 0 {
			target = target[:idx]
		}
		if target == "" {
			continue
		}
		out = append(out, filepath.Clean(filepath.Join(filepath.Dir(path), target)))
	}
	return out, nil
}

// checkDocsReachable walks the markdown link graph from README.md and
// reports every docs/*.md file no link path reaches: documentation nobody
// can discover from the front page is as good as missing.
func checkDocsReachable(root string) ([]string, error) {
	readme := filepath.Join(root, "README.md")
	if _, err := os.Stat(readme); err != nil {
		return []string{fmt.Sprintf("%s: missing README.md (docs reachability root)", root)}, nil
	}
	reached := map[string]bool{filepath.Clean(readme): true}
	frontier := []string{filepath.Clean(readme)}
	for len(frontier) > 0 {
		path := frontier[0]
		frontier = frontier[1:]
		if !strings.HasSuffix(path, ".md") {
			continue
		}
		targets, err := mdLinkTargets(path)
		if err != nil {
			continue // broken links are reported by checkMarkdownLinks
		}
		for _, tgt := range targets {
			if !reached[tgt] {
				reached[tgt] = true
				frontier = append(frontier, tgt)
			}
		}
	}
	var out []string
	docsDir := filepath.Join(root, "docs")
	entries, err := os.ReadDir(docsDir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".md") {
			continue
		}
		path := filepath.Clean(filepath.Join(docsDir, e.Name()))
		if !reached[path] {
			out = append(out, fmt.Sprintf("%s: not reachable from README.md via markdown links", path))
		}
	}
	return out, nil
}

// goFence matches the opening of a fenced go code block.
var goFence = regexp.MustCompile("^```go\\s*$")

// checkGoBlocks gofmt-checks every fenced `go` block in README.md and
// docs/*.md: each block must parse as a Go source fragment (declarations
// or statements) and be byte-identical to its gofmt rendering.
func checkGoBlocks(root string) ([]string, error) {
	var files []string
	files = append(files, filepath.Join(root, "README.md"))
	if entries, err := os.ReadDir(filepath.Join(root, "docs")); err == nil {
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".md") {
				files = append(files, filepath.Join(root, "docs", e.Name()))
			}
		}
	}
	var out []string
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return nil, err
		}
		lines := strings.Split(string(data), "\n")
		for i := 0; i < len(lines); i++ {
			if !goFence.MatchString(lines[i]) {
				continue
			}
			start := i + 1
			end := start
			for end < len(lines) && !strings.HasPrefix(lines[end], "```") {
				end++
			}
			block := strings.Join(lines[start:end], "\n")
			i = end
			formatted, err := format.Source([]byte(block))
			if err != nil {
				out = append(out, fmt.Sprintf("%s:%d: go block does not parse: %v", path, start, err))
				continue
			}
			if strings.TrimRight(string(formatted), "\n") != strings.TrimRight(block, "\n") {
				out = append(out, fmt.Sprintf("%s:%d: go block is not gofmt-clean", path, start))
			}
		}
	}
	return out, nil
}

#!/usr/bin/env bash
# Load smoke test: boot the real marketd binary with a data directory,
# drive it with a few seconds of open-loop mixed traffic from the load
# generator (pricebench -experiment load -load-addr, docs/LOAD.md),
# scrape /metrics and check the exposition is lint-clean and carries the
# expected families, then drain with SIGTERM. The generator exits
# nonzero on any non-shed error, so a 5xx that is not intentional
# shedding fails the job. The in-process version (with exact
# client/server counter reconciliation) lives in
# internal/serve/load_test.go; this exercises the same stack over a real
# socket, real files and a real signal.
#
# Usage: scripts/loadsmoke.sh [port]
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${1:-18081}"
RATE="${LOADRATE:-120}"
DUR="${LOADDUR:-3s}"
DIR="$(mktemp -d)"
BIN="$DIR/marketd"
PID=""
trap 'test -n "$PID" && kill -9 "$PID" 2>/dev/null || true; rm -rf "$DIR"' EXIT

wait_ready() {
  for _ in $(seq 1 100); do
    if curl -fsS "http://localhost:$PORT/readyz" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.2
  done
  echo "loadsmoke: server never became ready on :$PORT" >&2
  exit 1
}

go build -o "$BIN" ./cmd/marketd

echo "== boot marketd (durable, support 80) =="
"$BIN" -addr ":$PORT" -data-dir "$DIR/data" -support 80 -shards 2 -seed 1 &
PID=$!
wait_ready

echo "== load: $RATE req/s for $DUR =="
# -seed must match the server's so the generated workload is valid
# against its dataset; nonzero exit here means non-shed errors.
go run ./cmd/pricebench -experiment load \
  -load-addr "localhost:$PORT" -seed 1 -rate "$RATE" -duration "$DUR"

echo "== scrape /metrics =="
METRICS="$(curl -fsS "http://localhost:$PORT/metrics")"
for family in \
  marketd_http_requests_total \
  marketd_http_request_seconds_bucket \
  marketd_store_fsync_seconds_bucket \
  marketd_broker_version \
  marketd_store_last_seq; do
  if ! printf '%s\n' "$METRICS" | grep -q "^$family"; then
    echo "loadsmoke: /metrics missing family $family" >&2
    exit 1
  fi
done

# No non-shed 5xx server-side either: every 5xx the server counted must
# appear in the shed counter (503 + Retry-After); a plain 500 would not.
FIVEXX="$(printf '%s\n' "$METRICS" | awk '/^marketd_http_requests_total\{.*code="5/ {s += $2} END {print s + 0}')"
SHED5="$(printf '%s\n' "$METRICS" | awk '/^marketd_http_shed_total\{.*code="5/ {s += $2} END {print s + 0}')"
if [ "$FIVEXX" != "$SHED5" ]; then
  echo "loadsmoke: $FIVEXX server 5xx responses but only $SHED5 were shed" >&2
  exit 1
fi

echo "== drain (SIGTERM) =="
kill -TERM "$PID"
wait "$PID" 2>/dev/null || true
PID=""
echo "loadsmoke: ok ($FIVEXX 5xx, all intentional shed)"

#!/usr/bin/env bash
# benchcompare.sh — print per-benchmark deltas between two BENCH_<n>.json
# files produced by scripts/bench.sh.
#
# Usage: benchcompare.sh [--fail-over PCT] OLD.json NEW.json
#
# For every benchmark present in NEW, prints old/new ns_per_op and
# allocs_per_op with percentage deltas (negative = faster/leaner).
# Benchmarks present in only one file are printed as "added" / "removed",
# so a renamed or dropped benchmark never disappears silently from the
# trajectory. With --fail-over PCT, any benchmark whose ns/op or
# allocs/op regressed by more than PCT percent is flagged with "!" and
# the script exits nonzero — the CI regression gate. The files are
# line-structured (one benchmark object per line), so a POSIX awk join is
# enough — no jq dependency.
set -euo pipefail

failover=""
if [ "${1:-}" = "--fail-over" ]; then
	failover="${2:?--fail-over needs a percentage}"
	shift 2
fi
old="${1:?usage: benchcompare.sh [--fail-over PCT] OLD.json NEW.json}"
new="${2:?usage: benchcompare.sh [--fail-over PCT] OLD.json NEW.json}"

awk -v oldfile="$old" -v newfile="$new" -v failover="$failover" '
  function field(line, key,    rest) {
    if (match(line, "\"" key "\": [0-9.]+") == 0) return ""
    rest = substr(line, RSTART, RLENGTH)
    sub("\"" key "\": ", "", rest)
    return rest
  }
  function name(line,    rest) {
    if (match(line, "\"name\": \"[^\"]+\"") == 0) return ""
    rest = substr(line, RSTART, RLENGTH)
    sub(/"name": "/, "", rest)
    sub(/"$/, "", rest)
    return rest
  }
  function pct(o, n) {
    if (o == "" || o + 0 == 0) return "      -"
    return sprintf("%+6.1f%%", 100 * (n - o) / o)
  }
  function regressed(o, n) {
    return failover != "" && o != "" && n != "" && o + 0 > 0 && \
      100 * (n - o) / o > failover + 0
  }
  BEGIN {
    while ((getline line < oldfile) > 0) {
      nm = name(line)
      if (nm == "") continue
      oldOrder[oldN++] = nm
      oldNs[nm] = field(line, "ns_per_op")
      oldAllocs[nm] = field(line, "allocs_per_op")
    }
    close(oldfile)
    printf "%-42s %14s %14s %8s   %10s %10s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs", "delta"
    bad = 0
    while ((getline line < newfile) > 0) {
      nm = name(line)
      if (nm == "") continue
      seen[nm] = 1
      ns = field(line, "ns_per_op")
      al = field(line, "allocs_per_op")
      if (nm in oldNs) {
        flag = ""
        if (regressed(oldNs[nm], ns) || regressed(oldAllocs[nm], al)) {
          flag = " !"
          bad++
        }
        printf "%-42s %14s %14s %8s   %10s %10s %8s%s\n", nm, oldNs[nm], ns, pct(oldNs[nm], ns), \
          (oldAllocs[nm] == "" ? "-" : oldAllocs[nm]), (al == "" ? "-" : al), \
          (al == "" ? "      -" : pct(oldAllocs[nm], al)), flag
      } else {
        printf "%-42s %14s %14s %8s   %10s %10s %8s\n", nm, "-", ns, "added", "-", (al == "" ? "-" : al), "-"
      }
    }
    close(newfile)
    for (i = 0; i < oldN; i++) {
      nm = oldOrder[i]
      if (nm in seen) continue
      printf "%-42s %14s %14s %8s   %10s %10s %8s\n", nm, oldNs[nm], "-", "removed", \
        (oldAllocs[nm] == "" ? "-" : oldAllocs[nm]), "-", "-"
    }
    if (bad > 0) {
      printf "benchcompare: %d benchmark(s) regressed more than %s%% (flagged \"!\")\n", bad, failover > "/dev/stderr"
      exit 1
    }
  }
' </dev/null

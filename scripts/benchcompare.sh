#!/usr/bin/env bash
# benchcompare.sh — print per-benchmark deltas between two BENCH_<n>.json
# files produced by scripts/bench.sh.
#
# Usage: scripts/benchcompare.sh OLD.json NEW.json
#
# For every benchmark present in NEW, prints old/new ns_per_op and
# allocs_per_op with percentage deltas (negative = faster/leaner).
# Benchmarks missing from OLD show as "new". The files are line-structured
# (one benchmark object per line), so a POSIX awk join is enough — no jq
# dependency.
set -euo pipefail

old="${1:?usage: benchcompare.sh OLD.json NEW.json}"
new="${2:?usage: benchcompare.sh OLD.json NEW.json}"

awk -v oldfile="$old" -v newfile="$new" '
  function field(line, key,    rest) {
    if (match(line, "\"" key "\": [0-9.]+") == 0) return ""
    rest = substr(line, RSTART, RLENGTH)
    sub("\"" key "\": ", "", rest)
    return rest
  }
  function name(line,    rest) {
    if (match(line, "\"name\": \"[^\"]+\"") == 0) return ""
    rest = substr(line, RSTART, RLENGTH)
    sub(/"name": "/, "", rest)
    sub(/"$/, "", rest)
    return rest
  }
  function pct(o, n) {
    if (o == "" || o + 0 == 0) return "      -"
    return sprintf("%+6.1f%%", 100 * (n - o) / o)
  }
  BEGIN {
    while ((getline line < oldfile) > 0) {
      nm = name(line)
      if (nm == "") continue
      oldNs[nm] = field(line, "ns_per_op")
      oldAllocs[nm] = field(line, "allocs_per_op")
    }
    close(oldfile)
    printf "%-42s %14s %14s %8s   %10s %10s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs", "delta"
    while ((getline line < newfile) > 0) {
      nm = name(line)
      if (nm == "") continue
      ns = field(line, "ns_per_op")
      al = field(line, "allocs_per_op")
      if (nm in oldNs) {
        printf "%-42s %14s %14s %8s   %10s %10s %8s\n", nm, oldNs[nm], ns, pct(oldNs[nm], ns), \
          (oldAllocs[nm] == "" ? "-" : oldAllocs[nm]), (al == "" ? "-" : al), \
          (al == "" ? "      -" : pct(oldAllocs[nm], al))
      } else {
        printf "%-42s %14s %14s %8s   %10s %10s %8s\n", nm, "-", ns, "new", "-", (al == "" ? "-" : al), "-"
      }
    }
    close(newfile)
  }
' </dev/null

#!/usr/bin/env bash
# Restart smoke test: boot marketd with a data directory, take a quote,
# kill the server mid-flight (SIGKILL — no graceful snapshot), boot a
# second instance on the same directory, and assert it reports
# restored=true and returns the byte-identical quote. This is the
# docs/OPERATIONS.md contract exercised against the real binary, real
# files and real signals (the in-process version lives in
# cmd/marketd/main_test.go and internal/store/fault_test.go).
#
# Usage: scripts/restartsmoke.sh [port]
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${1:-18080}"
DIR="$(mktemp -d)"
BIN="$DIR/marketd"
PID=""
trap 'test -n "$PID" && kill -9 "$PID" 2>/dev/null || true; rm -rf "$DIR"' EXIT

QUERY='{"Name":"q","Tables":["Country"],"Where":[{"Col":{"Table":"Country","Col":"Continent"},"Op":0,"Val":{"K":3,"S":"Asia"}}],"Select":[{"Table":"Country","Col":"Name"}]}'
UPDATE='[{"Table":"Country","Row":3,"Col":2,"New":{"K":3,"S":"Europe"}}]'
# A mixed DML batch — one row insert (slot assigned server-side) and one
# row delete — so the crash leaves insert/delete WAL records behind and
# the second boot proves they replay exactly-once.
DML='[{"Table":"City","Row":-1,"Op":"insert","Vals":[{"K":1,"I":90001},{"K":3,"S":"Newtown"},{"K":3,"S":"AAA"},{"K":3,"S":"Central"},{"K":1,"I":12345}]},{"Table":"City","Row":7,"Op":"delete"}]'

wait_ready() {
  for _ in $(seq 1 100); do
    if curl -fsS "http://localhost:$PORT/readyz" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.2
  done
  echo "restartsmoke: server never became ready on :$PORT" >&2
  exit 1
}

go build -o "$BIN" ./cmd/marketd

echo "== boot 1: bootstrap + calibrate =="
"$BIN" -addr ":$PORT" -data-dir "$DIR/data" -support 60 -shards 2 &
PID=$!
wait_ready

# A cell update, a DML batch (insert + delete) and a purchase, so the
# second boot must replay durable WAL records of every kind and format,
# not just reread the initial snapshot.
curl -fsS -XPOST -d "$UPDATE" "http://localhost:$PORT/update" >/dev/null
curl -fsS -XPOST -d "$DML" "http://localhost:$PORT/update" >/dev/null
curl -fsS -XPOST -d "$QUERY" "http://localhost:$PORT/purchase?budget=1e18" >/dev/null

# The DML batch tombstoned City row 7 — compact explicitly so the crash
# also leaves a durable compaction-epoch WAL record behind, proving the
# second boot replays the epoch (or absorbs it via snapshot) and still
# quotes byte-identically on renumbered slots.
echo "== compaction epoch over HTTP =="
COMPACT="$(curl -fsS -XPOST "http://localhost:$PORT/compact")"
case "$COMPACT" in
  *'"compacted":true'*) echo "compact: $COMPACT" ;;
  *) echo "restartsmoke: POST /compact reclaimed nothing: $COMPACT" >&2; exit 1 ;;
esac

QUOTE1="$(curl -fsS -XPOST -d "$QUERY" "http://localhost:$PORT/quote")"
echo "quote: $QUOTE1"

echo "== crash (SIGKILL, no graceful snapshot) =="
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
PID=""

echo "== boot 2: recover from $DIR/data =="
"$BIN" -addr ":$PORT" -data-dir "$DIR/data" -support 60 -shards 2 &
PID=$!
wait_ready

READY="$(curl -fsS "http://localhost:$PORT/readyz")"
case "$READY" in
  *'"restored":true'*) ;;
  *) echo "restartsmoke: second boot did not restore: $READY" >&2; exit 1 ;;
esac

# The lifetime epoch counter must survive the crash (via the WAL epoch
# record or a snapshot that absorbed it).
STATS="$(curl -fsS "http://localhost:$PORT/stats")"
case "$STATS" in
  *'"compactions":1'*) ;;
  *) echo "restartsmoke: second boot lost the compaction epoch: $STATS" >&2; exit 1 ;;
esac

QUOTE2="$(curl -fsS -XPOST -d "$QUERY" "http://localhost:$PORT/quote")"
if [ "$QUOTE1" != "$QUOTE2" ]; then
  echo "restartsmoke: quotes differ across restart" >&2
  echo "  before: $QUOTE1" >&2
  echo "  after:  $QUOTE2" >&2
  exit 1
fi

kill -TERM "$PID"
wait "$PID" 2>/dev/null || true
PID=""
echo "restartsmoke: ok (byte-identical quote after crash + restart)"

#!/usr/bin/env bash
# bench.sh — run the perf-tracking benchmarks and record BENCH_<n>.json.
#
# Usage: scripts/bench.sh [n] [--compare BENCH_<m>.json]
#   n                PR / trajectory index (default 10); output lands in BENCH_<n>.json
#   --compare FILE   after writing BENCH_<n>.json, print a per-benchmark
#                    delta table (ns/op and allocs/op) against FILE and
#                    exit nonzero if any benchmark regressed more than
#                    BENCH_FAIL_OVER percent (default 10) in either —
#                    the same gate CI's bench-smoke job applies to the
#                    recorded trajectory
#   BENCHTIME_BASE   -benchtime for the serial/parallel baselines (default 5x;
#                    these run up to ~13 s/op, so the count stays small)
#   BENCHCOUNT_BASE  how many fresh-process rounds the baseline group runs
#                    (default 3; the fastest run per benchmark is recorded)
#   BENCHTIME_BUILD  -benchtime for the incremental/sharded engine pair
#                    (default 10x)
#   BENCHCOUNT_BUILD how many alternating-order process rounds the engine pair
#                    runs (default 4; the fastest run per benchmark is recorded,
#                    which is robust to background interference)
#   BENCHTIME_QUOTE  -benchtime for the quote-path group (default 2s; these
#                    run in microseconds, so time-based sampling gives the
#                    thousands of iterations a stable number needs)
#   BENCHCOUNT_QUOTE how many fresh-process rounds the quote group runs
#                    (default 3; the fastest run per benchmark is recorded,
#                    so one slow host phase cannot poison the whole group)
#   BENCHFILTER_BASE / BENCHFILTER_QUOTE  override those group regexps
#   LOADRATE / LOADDUR / LOADCOUNT  the SLO load group: offered rate
#                    (default 300 req/s), duration per round (default 4s)
#                    and rounds (default 2; fastest per entry recorded) of
#                    `pricebench -experiment load -slo`, whose
#                    slo_load/<class>_{p50,p95,p99,err_ppm} lines land in
#                    the JSON alongside the microbenchmarks (docs/LOAD.md);
#                    LOADCOUNT=0 skips the group
#   INGESTCOUNT      rounds of `pricebench -experiment ingest -slo` — the
#                    streaming-ingest mix (update-heavy, half the update
#                    bodies full-row inserts), recorded as slo_ingest/*
#                    entries (default 2; 0 skips); shares LOADRATE/LOADDUR
#   COMPACTCOUNT     rounds of `pricebench -experiment compact -slo` — the
#                    delete-heavy mix through auto-compaction epochs,
#                    recorded as slo_compact/* entries including end-of-run
#                    slot counts with and without compaction (default 2;
#                    0 skips); shares LOADRATE/LOADDUR
#
# The tracked set pins the conflict-set engine: hypergraph construction
# (serial vs parallel vs incremental vs sharded), the online conflict-set
# path (cold/warm at |S|=150, single-shard and sharded at |S|=10k), batch
# quoting (serial vs pooled), and the live-update path (update latency +
# post-update requote). When a benchmark appears several times
# (construction runs -count times), the fastest run is recorded.
set -euo pipefail
cd "$(dirname "$0")/.."

n="10"
compare=""
while [ $# -gt 0 ]; do
	case "$1" in
	--compare)
		compare="${2:?--compare needs a file}"
		shift 2
		;;
	*)
		n="$1"
		shift
		;;
	esac
done
basetime="${BENCHTIME_BASE:-5x}"
basecount="${BENCHCOUNT_BASE:-3}"
buildtime="${BENCHTIME_BUILD:-10x}"
buildcount="${BENCHCOUNT_BUILD:-4}"
quotetime="${BENCHTIME_QUOTE:-2s}"
quotecount="${BENCHCOUNT_QUOTE:-3}"
basefilter="${BENCHFILTER_BASE:-BenchmarkFig4Construction/.*/(serial|parallel)$}"
quotefilter="${BENCHFILTER_QUOTE:-BenchmarkConflictSet|BenchmarkQuoteBatch|BenchmarkUpdateRequote}"
loadrate="${LOADRATE:-300}"
loaddur="${LOADDUR:-4s}"
loadcount="${LOADCOUNT:-2}"
ingestcount="${INGESTCOUNT:-2}"
compactcount="${COMPACTCOUNT:-2}"
out="BENCH_${n}.json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

# Three groups, one sampling principle — every group runs in several
# fresh processes and the fastest run per benchmark is recorded, which is
# robust to background host interference: the pre-incremental baselines
# run up to ~13 s/op, so they get a small fixed count per round; the
# tracked engine variants are cheap, so they alternate the
# incremental/sharded order across rounds so machine-load drift hits both
# sides equally; the quote-path benches run in microseconds, so they
# sample time-based within each round.
: > "$raw"
for i in $(seq "$basecount"); do
	go test -run '^$' -bench "$basefilter" -benchtime "$basetime" . | tee -a "$raw"
done
for i in $(seq "$buildcount"); do
	if [ $((i % 2)) -eq 1 ]; then
		go test -run '^$' -bench 'BenchmarkFig4Construction/.*/incremental$' -benchtime "$buildtime" . | tee -a "$raw"
		go test -run '^$' -bench 'BenchmarkFig4Construction/.*/sharded$' -benchtime "$buildtime" . | tee -a "$raw"
	else
		go test -run '^$' -bench 'BenchmarkFig4Construction/.*/sharded$' -benchtime "$buildtime" . | tee -a "$raw"
		go test -run '^$' -bench 'BenchmarkFig4Construction/.*/incremental$' -benchtime "$buildtime" . | tee -a "$raw"
	fi
done
for i in $(seq "$quotecount"); do
	go test -run '^$' -bench "$quotefilter" -benchtime "$quotetime" . | tee -a "$raw"
done
# The SLO load group: the full serving stack (internal/serve over
# httptest) under open-loop mixed traffic; pricebench prints its
# latency-percentile results as Benchmark-format lines, so the same awk
# ingests them as slo_load/* entries and --compare gates
# latency-under-load regressions like any other benchmark.
if [ "$loadcount" -gt 0 ]; then
	for i in $(seq "$loadcount"); do
		go run ./cmd/pricebench -experiment load -rate "$loadrate" -duration "$loaddur" -slo | tee -a "$raw"
	done
fi
# The streaming-ingest group: same stack and rate, but under the
# insert-bearing StreamingIngestMix, so the trajectory also tracks
# latency while the database itself is growing (slo_ingest/* entries).
if [ "$ingestcount" -gt 0 ]; then
	for i in $(seq "$ingestcount"); do
		go run ./cmd/pricebench -experiment ingest -rate "$loadrate" -duration "$loaddur" -slo | tee -a "$raw"
	done
fi
# The compaction group: the delete-heavy mix (every pooled update body an
# insert, half the issued updates deletes) against an auto-compacting
# boot, so the trajectory tracks quote latency through compaction epochs
# and the end-of-run slot counts with and without compaction
# (slo_compact/* entries; docs/OPERATIONS.md).
if [ "$compactcount" -gt 0 ]; then
	for i in $(seq "$compactcount"); do
		go run ./cmd/pricebench -experiment compact -rate "$loadrate" -duration "$loaddur" -slo | tee -a "$raw"
	done
fi

awk -v pr="$n" -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
  /^goos:/   { goos = $2 }
  /^goarch:/ { goarch = $2 }
  /^cpu:/    { sub(/^cpu: /, ""); cpu = $0 }
  /^Benchmark/ && / ns\/op/ {
    name = $1
    sub(/^Benchmark/, "", name)
    sub(/-[0-9]+$/, "", name)
    iters = $2
    ns = $3 + 0
    bytes = ""; allocs = ""
    for (i = 4; i < NF; i++) {
      if ($(i + 1) == "B/op")      bytes = $i
      if ($(i + 1) == "allocs/op") allocs = $i
    }
    if (!(name in best) || ns < best[name]) {
      if (!(name in best)) order[nb++] = name
      best[name] = ns
      bestIters[name] = iters
      bestBytes[name] = bytes
      bestAllocs[name] = allocs
    }
  }
  END {
    printf "{\n"
    printf "  \"pr\": %s,\n", pr
    printf "  \"date\": \"%s\",\n", date
    printf "  \"goos\": \"%s\",\n", goos
    printf "  \"goarch\": \"%s\",\n", goarch
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"benchmarks\": [\n"
    for (i = 0; i < nb; i++) {
      name = order[i]
      line = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %.0f", name, bestIters[name], best[name])
      if (bestBytes[name] != "")  line = line sprintf(", \"bytes_per_op\": %s", bestBytes[name])
      if (bestAllocs[name] != "") line = line sprintf(", \"allocs_per_op\": %s", bestAllocs[name])
      line = line "}"
      printf "%s%s\n", line, (i < nb - 1 ? "," : "")
    }
    printf "  ]\n"
    printf "}\n"
  }
' "$raw" > "$out"

echo "wrote $out"

if [ -n "$compare" ]; then
	scripts/benchcompare.sh --fail-over "${BENCH_FAIL_OVER:-10}" "$compare" "$out"
fi

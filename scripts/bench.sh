#!/usr/bin/env bash
# bench.sh — run the perf-tracking benchmarks and record BENCH_<n>.json.
#
# Usage: scripts/bench.sh [n]
#   n          PR / trajectory index (default 2); output lands in BENCH_<n>.json
#   BENCHTIME  go test -benchtime value (default 3x)
#   BENCHFILTER  benchmark regexp (default: the construction + quote-path set)
#
# The tracked set pins the conflict-set engine: hypergraph construction
# (serial vs parallel vs incremental), the online conflict-set path (cold
# vs warm plan cache), and batch quoting (serial vs pooled).
set -euo pipefail
cd "$(dirname "$0")/.."

n="${1:-2}"
benchtime="${BENCHTIME:-3x}"
filter="${BENCHFILTER:-BenchmarkFig4Construction|BenchmarkConflictSet|BenchmarkQuoteBatch}"
out="BENCH_${n}.json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench "$filter" -benchtime "$benchtime" . | tee "$raw"

awk -v pr="$n" -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
  /^goos:/   { goos = $2 }
  /^goarch:/ { goarch = $2 }
  /^cpu:/    { sub(/^cpu: /, ""); cpu = $0 }
  /^Benchmark/ && / ns\/op/ {
    name = $1
    sub(/^Benchmark/, "", name)
    sub(/-[0-9]+$/, "", name)
    iters = $2
    ns = $3
    bytes = ""; allocs = ""
    for (i = 4; i < NF; i++) {
      if ($(i + 1) == "B/op")      bytes = $i
      if ($(i + 1) == "allocs/op") allocs = $i
    }
    line = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns)
    if (bytes != "")  line = line sprintf(", \"bytes_per_op\": %s", bytes)
    if (allocs != "") line = line sprintf(", \"allocs_per_op\": %s", allocs)
    line = line "}"
    bench[nb++] = line
  }
  END {
    printf "{\n"
    printf "  \"pr\": %s,\n", pr
    printf "  \"date\": \"%s\",\n", date
    printf "  \"goos\": \"%s\",\n", goos
    printf "  \"goarch\": \"%s\",\n", goarch
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"benchmarks\": [\n"
    for (i = 0; i < nb; i++) printf "%s%s\n", bench[i], (i < nb - 1 ? "," : "")
    printf "  ]\n"
    printf "}\n"
  }
' "$raw" > "$out"

echo "wrote $out"

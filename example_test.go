package querypricing_test

// Runnable godoc examples for the public facade. `go test` executes these
// and compares their output, so every snippet here — and by extension the
// README's quick-start prose — stays honest as the library evolves.

import (
	"fmt"

	querypricing "querypricing"
)

// ExamplePrice mirrors the package quick start: build a pricing instance
// by hand and run a registered algorithm on it by name.
func ExamplePrice() {
	h := querypricing.NewHypergraph(3)
	_ = h.AddEdge([]int{0, 1}, 10, "q1")
	_ = h.AddEdge([]int{1, 2}, 6, "q2")
	res, err := querypricing.Price("LPIP", h, querypricing.AlgorithmOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("revenue %.0f\n", res.Revenue)
	// Output: revenue 16
}

// ExampleListAlgorithms lists the engine registry: the six paper
// algorithms, in the paper's order, plus anything the caller registered.
func ExampleListAlgorithms() {
	for _, name := range querypricing.ListAlgorithms() {
		fmt.Println(name)
	}
	// Output:
	// UBP
	// UIP
	// LPIP
	// CIP
	// Layering
	// XOS
}

// ExampleBroker_Quote calibrates a broker from a forecast workload and
// prices an ad-hoc query that never appeared in it.
func ExampleBroker_Quote() {
	db := querypricing.WorldDatabase(querypricing.WorldConfig{Countries: 30, Cities: 80, Seed: 1})
	broker, err := querypricing.NewBroker(db, querypricing.BrokerConfig{SupportSize: 50, Seed: 2})
	if err != nil {
		fmt.Println(err)
		return
	}
	forecast := querypricing.SkewedWorkload(db)[:40]
	if _, err := broker.Calibrate(forecast, querypricing.UniformValuation{K: 100}, querypricing.AlgoUIP); err != nil {
		fmt.Println(err)
		return
	}
	adhoc := &querypricing.SelectQuery{
		Name:   "all-countries", // SELECT * FROM Country
		Tables: []string{"Country"},
	}
	quote, err := broker.Quote(adhoc)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("informative: %v, priced at database version %d\n", quote.Informative, quote.Version)
	// Output: informative: true, priced at database version 0
}

// ExampleBroker_Update applies a live update to the seller's database: the
// broker atomically publishes a new version, and subsequent quotes price
// against the updated snapshot while receipts keep pinning the version
// they were sold at.
func ExampleBroker_Update() {
	db := querypricing.WorldDatabase(querypricing.WorldConfig{Countries: 30, Cities: 80, Seed: 1})
	broker, err := querypricing.NewBroker(db, querypricing.BrokerConfig{SupportSize: 50, Seed: 2})
	if err != nil {
		fmt.Println(err)
		return
	}
	q := &querypricing.SelectQuery{
		Name:   "continents",
		Tables: []string{"Country"},
		Select: []querypricing.ColRef{{Table: "Country", Col: "Continent"}},
	}
	before, err := broker.Quote(q)
	if err != nil {
		fmt.Println(err)
		return
	}
	// Country 0 moves to a new continent; column 2 is Country.Continent.
	_, _, err = broker.Update([]querypricing.CellChange{
		{Table: "Country", Row: 0, Col: 2, New: querypricing.StringValue("Oceania")},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	after, err := broker.Quote(q)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("quoted at version %d, requoted at version %d\n", before.Version, after.Version)
	// Output: quoted at version 0, requoted at version 1
}

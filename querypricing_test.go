package querypricing

import (
	"testing"
)

// TestFacadeEndToEnd exercises the public API surface end to end: dataset
// -> workload -> support -> hypergraph -> valuations -> algorithms ->
// bounds -> broker.
func TestFacadeEndToEnd(t *testing.T) {
	db := WorldDatabase(WorldConfig{Countries: 40, Cities: 100, Seed: 1})
	queries := SkewedWorkload(db)[:20]

	set, err := GenerateSupport(db, SupportOptions{Size: 80, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	h, stats, err := BuildQueryHypergraph(set, queries, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.QueryEvals == 0 {
		t.Fatal("no work recorded")
	}
	ApplyValuations(h, UniformValuation{K: 100}, 3)

	ubp := UniformBundlePricing(h)
	uip := UniformItemPricing(h)
	lay := LayeringPricing(h)
	lpip, err := LPItemPricing(h, LPItemOptions{MaxCandidates: 5})
	if err != nil {
		t.Fatal(err)
	}
	cip, err := CapacityPricing(h, CapacityOptions{Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	xos := XOSPricing(h, lpip.Weights, cip.Weights)

	sum := SumValuations(h)
	for _, r := range []Result{ubp, uip, lay, lpip, cip, xos} {
		if r.Revenue < 0 || r.Revenue > sum*(1+1e-9) {
			t.Fatalf("%s revenue %g outside [0, %g]", r.Algorithm, r.Revenue, sum)
		}
	}
	bound, err := SubadditiveBound(h, BoundOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if bound <= 0 || bound > sum+1e-9 {
		t.Fatalf("bound %g outside (0, %g]", bound, sum)
	}

	refined, err := RefineUniformBundlePricing(h, ubp.BundlePrice)
	if err != nil {
		t.Fatal(err)
	}
	if refined.Revenue < 0 {
		t.Fatal("refinement produced negative revenue")
	}

	// The broker path.
	broker, err := NewBroker(db, BrokerConfig{SupportSize: 60, Seed: 4, LPIPCandidates: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := broker.Calibrate(queries, UniformValuation{K: 100}, AlgoLPIP); err != nil {
		t.Fatal(err)
	}
	q, err := broker.Quote(queries[0])
	if err != nil {
		t.Fatal(err)
	}
	if q.Price < 0 {
		t.Fatalf("negative quote %g", q.Price)
	}
}

func TestFacadeGapInstances(t *testing.T) {
	for _, inst := range []GapInstance{
		HarmonicGapInstance(100),
		PartitionGapInstance(16),
		LaminarGapInstance(3),
	} {
		if inst.Opt <= 0 || inst.H.NumEdges() == 0 {
			t.Fatalf("%s: degenerate instance", inst.Name)
		}
	}
}

func TestFacadeHypergraphHelpers(t *testing.T) {
	h := NewHypergraph(4)
	if err := h.AddEdge([]int{0, 1}, 5, "a"); err != nil {
		t.Fatal(err)
	}
	h2, err := HypergraphFromEdges(4, []Edge{{Items: []int{2, 3}, Valuation: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if RevenueOfBundlePrice(h2, 7) != 7 {
		t.Fatal("bundle revenue evaluation broken")
	}
	if RevenueOfItemPricing(h, []float64{2, 3, 0, 0}) != 5 {
		t.Fatal("item revenue evaluation broken")
	}
	if got := len(TPCHWorkload(TPCHDatabase(TPCHConfig{Parts: 160, Orders: 60, Seed: 5}))); got != 220 {
		t.Fatalf("TPCH workload = %d, want 220", got)
	}
	if got := len(SSBWorkload(SSBDatabase(SSBConfig{LineOrders: 100, Seed: 6}))); got != 701 {
		t.Fatalf("SSB workload = %d, want 701", got)
	}
	db := WorldDatabase(WorldConfig{Countries: 20, Cities: 50, Seed: 7})
	if got := len(UniformWorkload(db, 25)); got != 25 {
		t.Fatalf("uniform workload = %d, want 25", got)
	}
}

module querypricing

go 1.24

// Package querypricing is a Go implementation of the revenue-maximization
// framework for arbitrage-free query pricing from Chawla, Deep, Koutris and
// Teng, "Revenue Maximization for Query Pricing", PVLDB 13(1), 2019.
//
// The library covers the full pipeline of the paper:
//
//   - a relational engine and dataset generators (world, TPC-H, SSB) that
//     stand in for MySQL and the benchmark dbgen tools;
//   - Qirana-style support sets of neighboring instances and conflict-set
//     computation, turning queries into priced bundles over the support
//     (Section 3);
//   - the pricing hypergraph and the six pricing algorithms evaluated in
//     the paper: UBP, UIP, LPIP, CIP, the layering algorithm and XOS
//     combinations (Section 5), on top of a from-scratch bounded-variable
//     simplex LP solver;
//   - buyer-valuation generators for every model of Section 6;
//   - revenue upper bounds (sum of valuations and the subadditive LP
//     bound);
//   - worst-case gap constructions of Lemmas 2-4;
//   - a lock-free data-market broker that quotes and sells arbitrage-free
//     prices for live queries under heavy concurrent traffic, over a
//     versioned base database that accepts live updates (Broker.Update)
//     without stalling quotes.
//
// # Quick start
//
//	h := querypricing.NewHypergraph(3)
//	_ = h.AddEdge([]int{0, 1}, 10, "q1")
//	_ = h.AddEdge([]int{1, 2}, 6, "q2")
//	res, _ := querypricing.Price("LPIP", h, querypricing.AlgorithmOptions{})
//	fmt.Println(res.Revenue)
//
// # The engine registry
//
// Every pricing algorithm is registered in an engine behind one interface:
// Name() plus Price(hypergraph, options). Algorithms are selected by name —
// ListAlgorithms reports the registry, GetAlgorithm resolves one, and Price
// resolves and runs in one call. A single AlgorithmOptions struct carries
// every knob (LPIP threshold cap, CIP capacity grid, XOS component set);
// each algorithm reads only the fields it understands. Custom algorithms
// plug in via RegisterAlgorithm and NewAlgorithm and are then selectable
// everywhere an algorithm name is accepted: Broker.Calibrate, cmd/marketd's
// -algorithm flag, and cmd/pricebench's -algorithms roster.
//
// # The broker
//
// Broker serves concurrent quote traffic without a global lock: the
// calibrated pricing lives in an immutable snapshot behind an atomic
// pointer, Quote is a lock-free read, Calibrate rebuilds off to the side
// over the read-only sharded support set and publishes with one pointer
// swap, QuoteBatch fans a batch across a bounded worker pool, each quote
// fans its conflict-set computation across the support shards, and
// conflict sets are memoized in a bounded LRU keyed by the query's
// canonical SQL rendering. The seller's data may evolve while the market
// serves: Broker.Update applies cell changes and atomically publishes a
// new database version with cached plans delta-maintained; quotes and
// receipts pin the version they were priced at (docs/UPDATES.md).
//
// See examples/ for end-to-end scenarios and cmd/pricebench for the
// harness that regenerates every figure and table of the paper.
package querypricing

import (
	"querypricing/internal/bounds"
	"querypricing/internal/datagen"
	"querypricing/internal/engine"
	"querypricing/internal/hypergraph"
	"querypricing/internal/lowerbounds"
	"querypricing/internal/market"
	"querypricing/internal/online"
	"querypricing/internal/pricing"
	"querypricing/internal/relational"
	"querypricing/internal/support"
	"querypricing/internal/valuation"
	"querypricing/internal/workloads"
)

// ---- The pricing engine (algorithm registry) ----

// PricingAlgorithm is one registered arbitrage-free pricing algorithm:
// a name plus a Price method over a hypergraph and shared options.
type PricingAlgorithm = engine.Algorithm

// AlgorithmOptions is the shared knob set passed to every algorithm; each
// algorithm reads only the fields it understands.
type AlgorithmOptions = engine.Options

// ListAlgorithms returns the registered algorithm names: the six paper
// algorithms first (UBP, UIP, LPIP, CIP, Layering, XOS), then any
// user-registered ones.
func ListAlgorithms() []string { return engine.List() }

// GetAlgorithm resolves an algorithm by name (case-insensitive).
func GetAlgorithm(name string) (PricingAlgorithm, error) { return engine.Get(name) }

// RegisterAlgorithm adds a custom algorithm to the registry, making it
// selectable everywhere an algorithm name is accepted.
func RegisterAlgorithm(a PricingAlgorithm) error { return engine.Register(a) }

// NewAlgorithm wraps a pricing function as a registrable algorithm.
func NewAlgorithm(name string, fn func(*Hypergraph, AlgorithmOptions) (Result, error)) PricingAlgorithm {
	return engine.New(name, fn)
}

// Price resolves the named algorithm and runs it on the instance.
func Price(name string, h *Hypergraph, opts AlgorithmOptions) (Result, error) {
	return engine.Price(name, h, opts)
}

// ---- Hypergraph instances (Section 3.3) ----

// Hypergraph is a pricing instance: items are support-set instances,
// weighted hyperedges are buyer bundles (query conflict sets).
type Hypergraph = hypergraph.Hypergraph

// Edge is one buyer bundle with its valuation.
type Edge = hypergraph.Edge

// HypergraphStats summarizes an instance (Table 3 shape).
type HypergraphStats = hypergraph.Stats

// NewHypergraph returns an empty instance with n items.
func NewHypergraph(n int) *Hypergraph { return hypergraph.New(n) }

// HypergraphFromEdges builds an instance from explicit edges.
func HypergraphFromEdges(n int, edges []Edge) (*Hypergraph, error) {
	return hypergraph.FromEdges(n, edges)
}

// ---- Pricing algorithms (Section 5) ----

// Result is the outcome of a pricing algorithm.
type Result = pricing.Result

// LPItemOptions tunes LPIP.
type LPItemOptions = pricing.LPItemOptions

// CapacityOptions tunes CIP.
type CapacityOptions = pricing.CapacityOptions

// UniformBundlePricing runs UBP: the optimal flat bundle price.
func UniformBundlePricing(h *Hypergraph) Result { return pricing.UniformBundle(h) }

// UniformItemPricing runs UIP: the optimal single per-item weight.
func UniformItemPricing(h *Hypergraph) Result { return pricing.UniformItem(h) }

// LPItemPricing runs LPIP: per-threshold forced-sale LPs.
func LPItemPricing(h *Hypergraph, opts LPItemOptions) (Result, error) {
	return pricing.LPItem(h, opts)
}

// CapacityPricing runs CIP: welfare-LP duals over a capacity grid.
func CapacityPricing(h *Hypergraph, opts CapacityOptions) (Result, error) {
	return pricing.Capacity(h, opts)
}

// LayeringPricing runs Algorithm 1 (the layering B-approximation).
func LayeringPricing(h *Hypergraph) Result { return pricing.Layering(h) }

// XOSPricing combines item pricings into their pointwise-max XOS pricing.
func XOSPricing(h *Hypergraph, weightSets ...[]float64) Result {
	return pricing.XOS(h, weightSets...)
}

// RefineUniformBundlePricing post-processes a flat price into an item
// pricing via one LP (Section 6.3).
func RefineUniformBundlePricing(h *Hypergraph, bundlePrice float64) (Result, error) {
	return pricing.RefineUniformBundle(h, bundlePrice)
}

// RevenueOfItemPricing evaluates an item-weight vector on an instance.
func RevenueOfItemPricing(h *Hypergraph, weights []float64) float64 {
	return pricing.RevenueAdditive(h, weights)
}

// RevenueOfBundlePrice evaluates a flat price on an instance.
func RevenueOfBundlePrice(h *Hypergraph, price float64) float64 {
	return pricing.RevenueUniformBundle(h, price)
}

// ---- Revenue bounds (Section 6.1) ----

// BoundOptions tunes the subadditive bound LP.
type BoundOptions = bounds.Options

// SumValuations is the weak upper bound used to normalize all figures.
func SumValuations(h *Hypergraph) float64 { return bounds.SumValuations(h) }

// SubadditiveBound is the paper's heuristic LP bound on sell-everything
// arbitrage-consistent revenue.
func SubadditiveBound(h *Hypergraph, opts BoundOptions) (float64, error) {
	return bounds.Subadditive(h, opts)
}

// ---- Valuation models (Section 6.3) ----

// ValuationModel assigns buyer valuations to bundles.
type ValuationModel = valuation.Model

// UniformValuation is v_e ~ Uniform[1,K].
type UniformValuation = valuation.Uniform

// ZipfValuation is v_e ~ Zipf(A).
type ZipfValuation = valuation.Zipf

// ExponentialScaledValuation is v_e ~ Exp(mean |e|^K).
type ExponentialScaledValuation = valuation.ExponentialScaled

// NormalScaledValuation is v_e ~ N(|e|^K, 10).
type NormalScaledValuation = valuation.NormalScaled

// AdditiveValuation is the per-item additive model of Figure 7.
type AdditiveValuation = valuation.Additive

// Additive-model index distributions.
const (
	IndexUniform  = valuation.IndexUniform
	IndexBinomial = valuation.IndexBinomial
)

// ApplyValuations draws valuations from the model onto the instance.
func ApplyValuations(h *Hypergraph, m ValuationModel, seed int64) {
	valuation.Apply(h, m, seed)
}

// ---- Relational substrate ----

// Database is an in-memory relational database. Databases are versioned:
// Apply publishes a batch of cell changes as a new snapshot with the
// version counter incremented, leaving the receiver untouched.
type Database = relational.Database

// SelectQuery is the deterministic query form the market prices.
type SelectQuery = relational.SelectQuery

// QueryResult is a materialized query answer.
type QueryResult = relational.Result

// Value is a dynamically typed relational cell value.
type Value = relational.Value

// ColRef names a column of a table (or alias) inside a query.
type ColRef = relational.ColRef

// CellChange is a single change to a database, discriminated by Op: the
// zero Op is a cell update (Table.Rows[Row][Col] becomes New), "insert"
// appends a full row, "delete" tombstones a slot. It is the delta
// currency of the whole stack — live updates (Database.Apply,
// Broker.Update) and support-set neighbors both speak it.
type CellChange = relational.CellChange

// RowInsert returns a change that appends a full row to table; the slot
// it lands in is assigned deterministically at apply time.
func RowInsert(table string, vals ...Value) CellChange { return relational.RowInsert(table, vals...) }

// RowDelete returns a change that tombstones the row at slot row.
func RowDelete(table string, row int) CellChange { return relational.RowDelete(table, row) }

// IntValue returns an integer cell value.
func IntValue(v int64) Value { return relational.Int(v) }

// FloatValue returns a float cell value.
func FloatValue(v float64) Value { return relational.Float(v) }

// StringValue returns a string cell value.
func StringValue(s string) Value { return relational.Str(s) }

// NullValue returns the SQL NULL cell value.
func NullValue() Value { return relational.Null() }

// ---- Dataset generators ----

// WorldConfig sizes the synthetic world database.
type WorldConfig = datagen.WorldConfig

// TPCHConfig sizes the micro TPC-H database.
type TPCHConfig = datagen.TPCHConfig

// SSBConfig sizes the micro SSB database.
type SSBConfig = datagen.SSBConfig

// WorldDatabase generates the world-shaped dataset.
func WorldDatabase(cfg WorldConfig) *Database { return datagen.World(cfg) }

// TPCHDatabase generates the micro TPC-H dataset.
func TPCHDatabase(cfg TPCHConfig) *Database { return datagen.TPCH(cfg) }

// SSBDatabase generates the micro SSB dataset.
func SSBDatabase(cfg SSBConfig) *Database { return datagen.SSB(cfg) }

// ---- Query workloads (Section 6.2) ----

// SkewedWorkload is the 986-query world workload (Appendix B).
func SkewedWorkload(db *Database) []*SelectQuery { return workloads.Skewed(db) }

// UniformWorkload is the m-query equal-selectivity workload.
func UniformWorkload(db *Database, m int) []*SelectQuery { return workloads.Uniform(db, m) }

// TPCHWorkload is the 220-query TPC-H workload (Appendix C).
func TPCHWorkload(db *Database) []*SelectQuery { return workloads.TPCH(db) }

// SSBWorkload is the 701-query SSB workload (Appendix C).
func SSBWorkload(db *Database) []*SelectQuery { return workloads.SSB(db) }

// ---- Support sets and conflict sets (Section 3.2) ----

// SupportSet is a sampled set of neighboring database instances.
type SupportSet = support.Set

// SupportOptions controls support sampling.
type SupportOptions = support.GenOptions

// BuildOptions controls hypergraph construction.
type BuildOptions = support.BuildOptions

// BuildStats reports construction work (pruning effectiveness).
type BuildStats = support.Stats

// GenerateSupport samples a support set over a database.
func GenerateSupport(db *Database, opts SupportOptions) (*SupportSet, error) {
	return support.Generate(db, opts)
}

// GenerateTargetedSupport builds a query-aware support set: each neighbor
// is crafted to be observed by a specific workload query (the "Choosing
// support set" future work of Section 7.2). Compared to random sampling it
// yields fewer empty conflict sets and more unique-item edges.
func GenerateTargetedSupport(db *Database, queries []*SelectQuery, opts SupportOptions) (*SupportSet, error) {
	return support.TargetedGenerate(db, queries, opts)
}

// BuildQueryHypergraph computes every query's conflict set and assembles
// the pricing hypergraph (valuations left zero).
func BuildQueryHypergraph(set *SupportSet, queries []*SelectQuery, opts BuildOptions) (*Hypergraph, *BuildStats, error) {
	return support.BuildHypergraph(set, queries, opts)
}

// ConflictSet computes CS(q, D) for one query.
func ConflictSet(set *SupportSet, q *SelectQuery) ([]int, error) {
	return support.ConflictSet(set, q)
}

// ---- Worst-case constructions (Appendix A) ----

// GapInstance couples a lower-bound construction with its known OPT.
type GapInstance = lowerbounds.Instance

// HarmonicGapInstance is the Lemma 2 family (item pricing beats UBP).
func HarmonicGapInstance(m int) GapInstance { return lowerbounds.HarmonicAdditive(m) }

// PartitionGapInstance is the Lemma 3 family (UBP beats item pricing).
func PartitionGapInstance(n int) GapInstance { return lowerbounds.PartitionUniform(n) }

// LaminarGapInstance is the Lemma 4 / Figure 9 family (both lose log m).
func LaminarGapInstance(depth int) GapInstance { return lowerbounds.LaminarSubmodular(depth) }

// ---- Data market broker (the Qirana role) ----

// Broker quotes and sells arbitrage-free query prices.
type Broker = market.Broker

// BrokerConfig configures a broker.
type BrokerConfig = market.Config

// BrokerAlgorithm selects the calibration algorithm.
type BrokerAlgorithm = market.Algorithm

// Quote is a priced offer for a query, stamped with the database version
// it was priced against.
type Quote = market.Quote

// Receipt records a completed sale, pinning the database version sold.
type Receipt = market.Receipt

// SupportUpdateStats reports how much compiled plan state a live update
// carried over (Broker.Update).
type SupportUpdateStats = support.UpdateStats

// The broker's calibration algorithms.
const (
	AlgoUBP      = market.UBP
	AlgoUIP      = market.UIP
	AlgoLPIP     = market.LPIP
	AlgoCIP      = market.CIP
	AlgoLayering = market.Layering
	AlgoXOS      = market.XOS
)

// NewBroker samples a support set over the dataset and returns a broker.
func NewBroker(db *Database, cfg BrokerConfig) (*Broker, error) {
	return market.NewBroker(db, cfg)
}

// NewBrokerWithSupport returns a broker over a caller-supplied support set
// (for targeted supports, or to rebuild a broker over the same neighbors).
func NewBrokerWithSupport(db *Database, set *SupportSet, cfg BrokerConfig) (*Broker, error) {
	return market.NewBrokerWithSupport(db, set, cfg)
}

// ---- Online price learning (Section 7.2 future work) ----

// OnlinePricer is a posted-price learner that adapts from buy/no-buy
// feedback only.
type OnlinePricer = online.Pricer

// OnlineSimResult reports an online pricing simulation.
type OnlineSimResult = online.SimResult

// NewUCBBundleLearner returns UCB1 over a flat price grid.
func NewUCBBundleLearner(grid []float64) OnlinePricer { return online.NewUCBBundle(grid) }

// NewEXP3BundleLearner returns EXP3 over a flat price grid.
func NewEXP3BundleLearner(grid []float64, gamma float64, seed int64) OnlinePricer {
	return online.NewEXP3Bundle(grid, gamma, seed)
}

// NewItemPriceLearner returns the multiplicative per-item weight learner.
func NewItemPriceLearner(numItems int, start, eta float64) *online.MultiplicativeItem {
	return online.NewMultiplicativeItem(numItems, start, eta)
}

// OnlinePriceGrid builds a geometric price grid for the bundle learners.
func OnlinePriceGrid(lo, hi float64, arms int) []float64 { return online.PriceGrid(lo, hi, arms) }

// SimulateOnlinePricing replays `rounds` buyers drawn from the instance's
// edges (with their fixed hidden valuations) against a learner.
func SimulateOnlinePricing(h *Hypergraph, p OnlinePricer, rounds int, seed int64) OnlineSimResult {
	return online.Simulate(h, p, rounds, seed)
}
